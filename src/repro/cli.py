"""Command-line interface: ``repro-ft``.

Subcommands
-----------
``run``          generic experiment driver over any registered construction
``lifetime``     fault-arrival timelines driven to first recovery failure
``traffic``      guest-torus workload measurements (closed batch or open loop)
``serve``        long-lived operator daemon (event ingest, queries, telemetry)
``loadgen``      sustained mixed workload against a running serve daemon
``conformance``  differential-oracle + golden-artifact gate over all backends
``info``         print derived parameters of a construction
``bn-trial``     fault-injection trials against B^d_n
``dn-attack``    adversarial campaign against D^d_{n,k}
``figures``      regenerate the paper's Figure 1 / Figure 2 (ASCII)
``route``        routing simulation on a recovered torus

Primary command output (summaries, tables, figures) goes to stdout;
status and diagnostics go through :mod:`logging` (the ``repro`` logger
hierarchy) to stderr, with the global ``--log-level`` flag shared by the
daemon and the one-shot commands alike.

``run`` is the registry-powered front end::

    repro-ft run --construction dn --n 70 --b 2 --pattern random,diagonal \\
                 --trials 20 --workers 8 --out results.json
    repro-ft run --construction bn --b 4 --p 0.001,0.004 --trials 100
"""

from __future__ import annotations

import argparse
import logging
import sys

from repro._version import __version__

__all__ = ["main"]

log = logging.getLogger("repro.cli")

_LOG_LEVELS = ("debug", "info", "warning", "error")


def _setup_logging(level: str, *, timestamps: bool = False) -> None:
    """(Re)bind the ``repro`` logger hierarchy to the *current* stderr.

    Handlers are rebuilt on every :func:`main` call (instead of a one-shot
    ``basicConfig``) so programmatic callers — and the test suite's
    captured streams — always log to whatever ``sys.stderr`` is now.
    Messages stay bare by default; ``timestamps`` switches to the
    operator format the long-running daemon wants.
    """
    root = logging.getLogger("repro")
    for handler in list(root.handlers):
        root.removeHandler(handler)
    handler = logging.StreamHandler(sys.stderr)
    fmt = "%(asctime)s %(levelname)-7s %(name)s: %(message)s" if timestamps \
        else "%(message)s"
    handler.setFormatter(logging.Formatter(fmt))
    root.addHandler(handler)
    root.setLevel(getattr(logging, level.upper()))


#: Factory kwargs accepted by each registered construction (CLI flag -> kwarg).
#: Kept as a static table — deriving it from the factories' signatures would
#: require importing repro.api.adapters at parser-build time, i.e. on every
#: CLI invocation including `--help`, defeating the lazy-import design.
#: Must be kept in sync with the @register factories in repro/api/adapters.py.
_RUN_PARAMS = {
    "bn": ("d", "b", "s", "t", "strategy"),
    "an": ("d", "b", "s", "t", "k_sub", "h", "c"),
    "dn": ("d", "n", "b"),
    "alon_chung": ("n", "blowup", "kind"),
    "replication": ("n", "d", "replication", "c_r"),
    "sparerows": ("n", "sigma"),
}


def _make_runner(args: argparse.Namespace):
    """The experiment runner shared by run/lifetime/traffic: worker pool,
    kernel tier and streaming memory budget are runner (non-spec)
    choices — results are byte-identical whatever they are set to.
    Requesting ``--backend compiled`` where the JIT dependency is absent
    raises here (a clean fast failure), before any trial runs."""
    from repro.api import ExperimentRunner

    return ExperimentRunner(
        workers=args.workers, batch=args.batch, max_batch_bytes=args.max_batch_bytes,
        backend=args.backend,
    )


def _add_backend_arg(parser: argparse.ArgumentParser) -> None:
    """The kernel-tier flag shared by run/lifetime/traffic."""
    parser.add_argument(
        "--backend", choices=["auto", "scalar", "batch", "compiled"], default=None,
        help="kernel tier: scalar reference loop, numpy batch kernels, or "
             "numba-compiled cores (auto = best available; results are "
             "byte-identical on every tier, and an explicitly requested "
             "unavailable tier fails fast — see docs/fastpath.md)")


def _add_streaming_args(parser: argparse.ArgumentParser) -> None:
    """Checkpoint/resume + memory-budget flags (run/lifetime/traffic)."""
    parser.add_argument(
        "--checkpoint", type=str, default="",
        help="append each completed seed chunk to this NDJSON journal so an "
             "interrupted sweep can be resumed (see docs/scaling.md)")
    parser.add_argument(
        "--resume", action="store_true",
        help="skip chunks already recorded in the --checkpoint journal; the "
             "final JSON is byte-identical to an uninterrupted run")
    parser.add_argument(
        "--max-batch-bytes", dest="max_batch_bytes", type=int, default=None,
        help="per-worker resident fault-stack byte budget for the batched "
             "kernels (default: 64 MiB; results are identical at any budget)")


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.api import ExperimentRunner, ExperimentSpec, FaultSpec

    params = {
        key: getattr(args, key)
        for key in _RUN_PARAMS[args.construction]
        if getattr(args, key) is not None
    }
    from repro.errors import JournalError, ParameterError
    from repro.faults.adversary import ADVERSARY_PATTERNS

    grid: list[FaultSpec] = []
    try:
        if args.pattern:
            for pat in args.pattern.split(","):
                if pat not in ADVERSARY_PATTERNS:
                    log.error(
                        "run: unknown pattern %r; options: %s",
                        pat,
                        ", ".join(sorted(ADVERSARY_PATTERNS)),
                    )
                    return 2
                grid.append(FaultSpec(pattern=pat, k=args.k))
        if args.p:
            grid += [FaultSpec(p=float(p), q=args.q) for p in args.p.split(",")]
        for text in args.fault_model:
            grid.append(FaultSpec(fault_model=_parse_fault_model(text)))
    except ValueError as exc:
        log.error("run: invalid fault point: %s", exc)
        return 2
    if not grid:
        log.error(
            "run: need at least one fault point "
            "(--p, --pattern and/or --fault-model)"
        )
        return 2
    spec = ExperimentSpec(
        construction=args.construction,
        params=params,
        grid=tuple(grid),
        trials=args.trials,
        seed0=args.seed,
        name=args.name or args.construction,
    )
    try:
        result = _make_runner(args).run(
            spec, checkpoint=args.checkpoint or None, resume=args.resume
        )
    except (JournalError, ParameterError, ValueError) as exc:
        log.error("run: %s", exc)
        return 2
    print(result.summary())
    if args.out:
        result.save(args.out)
        log.info("results written to %s", args.out)
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    from repro.core.params import BnParams, DnParams

    if args.construction == "bn":
        p = BnParams(d=args.d, b=args.b, s=args.s, t=args.t)
        print(p.describe())
        print(f"  paper fault regime p = b^-3d = {p.paper_fault_probability:.3e}")
    else:
        p = DnParams(d=args.d, n=args.n, b=args.b)
        print(p.describe())
        print(f"  tolerates any k = {p.k} node+edge faults")
    return 0


def _cmd_bn_trial(args: argparse.Namespace) -> int:
    from repro.analysis.montecarlo import MonteCarlo
    from repro.core.bn import BTorus
    from repro.core.params import BnParams

    params = BnParams(d=args.d, b=args.b, s=args.s, t=args.t)
    bt = BTorus(params)
    p = args.p if args.p is not None else params.paper_fault_probability
    mc = MonteCarlo(lambda seed: bt.trial(p, seed, check_health=args.health))
    res = mc.run(args.trials, seed0=args.seed)
    print(params.describe())
    print(f"p = {p:.4g}: {res.summary()}")
    return 0


def _cmd_dn_attack(args: argparse.Namespace) -> int:
    from repro.analysis.sweep import sweep_dn_adversarial
    from repro.core.params import DnParams
    from repro.faults.adversary import ADVERSARY_PATTERNS

    params = DnParams(d=args.d, n=args.n, b=args.b)
    print(params.describe())
    patterns = args.patterns.split(",") if args.patterns else sorted(ADVERSARY_PATTERNS)
    results = sweep_dn_adversarial(params, patterns, args.trials, seed0=args.seed)
    for pattern, res in results.items():
        print(f"  {pattern:10s} {res.summary()}")
    return 0


def _cmd_lifetime(args: argparse.Namespace) -> int:
    from repro.api import ExperimentRunner, ExperimentSpec, LifetimeSpec
    from repro.errors import JournalError, ParameterError

    params = {
        key: getattr(args, key)
        for key in _RUN_PARAMS[args.construction]
        if getattr(args, key) is not None
    }
    try:
        if args.fault_model:
            # A model replaces the timeline-kind knobs wholesale; the
            # spec's own validation rejects mixing the two vocabularies.
            lspec = LifetimeSpec(
                fault_model=_parse_fault_model(args.fault_model),
                timeline=args.timeline,
                rate=args.rate,
                burst=args.burst,
                pattern=args.pattern,
                k=args.k,
                repair_rate=args.repair_rate,
                max_steps=args.max_steps,
            )
        else:
            lspec = LifetimeSpec(
                timeline=args.timeline,
                rate=args.rate,
                burst=args.burst,
                pattern=args.pattern,
                k=args.k,
                repair_rate=args.repair_rate,
                max_steps=args.max_steps,
            )
    except ValueError as exc:
        log.error("lifetime: %s", exc)
        return 2
    if args.traffic and args.construction != "bn":
        # Validate before the (possibly long) experiment runs.
        log.error("lifetime: --traffic snapshots support bn only")
        return 2
    spec = ExperimentSpec(
        construction=args.construction,
        params=params,
        grid=(lspec,),
        trials=args.trials,
        seed0=args.seed,
        name=args.name or f"{args.construction}-lifetime",
    )
    try:
        result = _make_runner(args).run(
            spec, checkpoint=args.checkpoint or None, resume=args.resume
        )
    except (JournalError, ParameterError, ValueError) as exc:
        log.error("lifetime: %s", exc)
        return 2
    print(result.summary())
    if args.construction == "bn":
        from repro.core.params import BnParams

        bp = BnParams(
            d=params.get("d", 2), b=params.get("b", 3),
            s=params.get("s", 1), t=params.get("t", 2),
        )
        print(f"theory scale N*b^-3d = {bp.num_nodes * bp.paper_fault_probability:.1f}")
        if args.traffic:
            from repro.core.bn import BTorus
            from repro.sim.lifetime_traffic import lifetime_traffic_snapshots

            checkpoints = (
                [int(x) for x in args.checkpoints.split(",")]
                if args.checkpoints
                else [5, 10, 20]
            )
            try:
                snap = lifetime_traffic_snapshots(
                    BTorus(bp), lspec, args.seed, checkpoints,
                    pattern=args.traffic, messages=args.messages,
                    strategy=params.get("strategy", "auto"),
                    live_traffic=args.live_traffic,
                    router=args.router,
                )
            except (KeyError, ValueError) as exc:
                # e.g. bitreverse on a non-power-of-two guest
                log.error("lifetime: %s", exc)
                return 2
            print(
                f"traffic snapshots ('{args.traffic}', {args.messages} messages"
                f"{', live' if args.live_traffic else ''}"
                f"{', adaptive' if args.router == 'adaptive' else ''}), "
                f"trial seed {args.seed}, lifetime {snap['lifetime']}:"
            )
            for s in snap["snapshots"]:
                if not s["reached"]:
                    print(f"  @{s['arrivals']:>4} arrivals: not reached "
                          "(trial ended earlier)")
                    continue
                st = s["stats"]
                undeliv = (
                    f"undeliverable={st['undeliverable']} "
                    if "undeliverable" in st else ""
                )
                print(
                    f"  @{s['arrivals']:>4} arrivals: faults={s['num_faults']} "
                    f"p50={st['p50']:g} p99={st['p99']:g} "
                    f"timed_out={st['timed_out']} {undeliv}"
                    f"pristine={'yes' if s['matches_pristine'] else 'NO'}"
                )
    if args.out:
        result.save(args.out)
        log.info("results written to %s", args.out)
    return 0


def _cmd_traffic(args: argparse.Namespace) -> int:
    from repro.api import ExperimentRunner, ExperimentSpec, TrafficSpec
    from repro.errors import JournalError, ParameterError

    params = {
        key: getattr(args, key)
        for key in _RUN_PARAMS[args.construction]
        if getattr(args, key) is not None
    }
    grid: list[TrafficSpec] = []
    try:
        fault_model = (
            _parse_fault_model(args.fault_model) if args.fault_model else None
        )
        for pattern in args.pattern.split(","):
            if args.rate:
                for rate in args.rate.split(","):
                    grid.append(
                        TrafficSpec(
                            pattern=pattern,
                            injection=args.injection,
                            rate=float(rate),
                            cycles=args.cycles,
                            warmup=args.warmup,
                            max_cycles=args.max_cycles,
                            router=args.router,
                            qos_classes=args.qos_classes,
                            credits=args.credits,
                            fault_model=fault_model,
                        )
                    )
            else:
                grid.append(
                    TrafficSpec(
                        pattern=pattern,
                        messages=args.messages,
                        max_cycles=args.max_cycles,
                        router=args.router,
                        qos_classes=args.qos_classes,
                        credits=args.credits,
                        fault_model=fault_model,
                    )
                )
    except ValueError as exc:
        log.error("traffic: invalid traffic point: %s", exc)
        return 2
    spec = ExperimentSpec(
        construction=args.construction,
        params=params,
        grid=tuple(grid),
        trials=args.trials,
        seed0=args.seed,
        name=args.name or f"{args.construction}-traffic",
    )
    try:
        result = _make_runner(args).run(
            spec, checkpoint=args.checkpoint or None, resume=args.resume
        )
    except (JournalError, ParameterError, TypeError, ValueError) as exc:
        log.error("traffic: %s", exc)
        return 2
    print(result.summary())
    if args.out:
        result.save(args.out)
        log.info("results written to %s", args.out)
    return 0


def _cmd_conformance(args: argparse.Namespace) -> int:
    from repro.testkit.conformance import run_conformance

    reports = run_conformance(
        quick=args.quick,
        golden_dir=args.golden_dir or None,
        update_golden=args.update_golden,
        emit=print,
    )
    bad = [r for r in reports if not r.ok]
    cases = sum(r.cases for r in reports)
    skipped = sum(1 for r in reports if r.skipped)
    tier = "quick" if args.quick else "full"
    print(
        f"conformance ({tier}): {len(reports)} oracles, {cases} cases, "
        f"{len(bad)} failed" + (f", {skipped} skipped" if skipped else "")
    )
    if bad:
        print()
        for report in bad:
            print(report.describe())
        return 1
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro.viz import figure1, figure2

    for fig in (figure1(), figure2()):
        print(fig.title)
        print(fig.text)
        print(f"  meta: {fig.meta}")
        print()
    return 0


def _cmd_route(args: argparse.Namespace) -> int:
    from repro.core.bn import BTorus
    from repro.core.params import BnParams
    from repro.sim import latency_stats, make_traffic, simulate
    from repro.util.rng import spawn_rng

    from repro.errors import ReconstructionError

    params = BnParams(d=2, b=args.b, s=args.s, t=args.t)
    bt = BTorus(params)
    rec = None
    faults = None
    rng = spawn_rng(args.seed, "cli-route")
    for attempt in range(10):  # tiny instances occasionally draw a bad set
        rng = spawn_rng(args.seed + attempt, "cli-route")
        faults = bt.sample_faults(params.paper_fault_probability, rng)
        try:
            rec = bt.recover(faults)
            break
        except ReconstructionError as exc:
            log.warning(
                "seed %d: unrecoverable draw (%s); retrying",
                args.seed + attempt, exc.category,
            )
    if rec is None:
        log.error("no recoverable draw in 10 attempts")
        return 1
    shape = rec.guest_shape()
    try:
        traffic = make_traffic(shape, args.pattern, args.messages, rng)
    except (KeyError, ValueError) as exc:
        # e.g. bitreverse on a non-power-of-two guest, unknown pattern
        log.error("route: %s", exc)
        return 2
    stats = latency_stats(simulate(shape, traffic))
    print(f"recovered {shape} torus from {int(faults.sum())} faults; "
          f"routing '{args.pattern}':")
    for k, v in stats.items():
        print(f"  {k:10s} {v}")
    return 0


def _parse_fault_model(text: str) -> dict:
    """``name[:key=val,...]`` -> a validated fault-model dict.

    The dict form is exactly what the specs carry (and serialize), so the
    CLI never grows its own model vocabulary: names come from the
    registry, parameter validation is the model class's own.
    """
    from repro.faults.registry import fault_model_names, make_fault_model

    name, _, params = text.partition(":")
    if name not in fault_model_names():
        raise ValueError(
            f"unknown fault model {name!r}; options: "
            f"{', '.join(fault_model_names())}"
        )
    model = {"name": name, **_parse_params(params)}
    make_fault_model(model)  # the model's own range checks
    return model


def _parse_param_value(text: str):
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    return text


def _parse_params(text: str) -> dict:
    """``d=2,b=3,strategy=auto`` -> factory kwargs (int/float/str values)."""
    params: dict = {}
    for item in filter(None, text.split(",")):
        key, sep, value = item.partition("=")
        if not sep or not key:
            raise ValueError(f"bad parameter {item!r} (expected key=value)")
        params[key] = _parse_param_value(value)
    return params


def _parse_machine_spec(text: str) -> tuple[str, str, dict]:
    """``name=construction:key=val,...`` -> a ServeConfig machine entry."""
    name, sep, rest = text.partition("=")
    if not sep or not name:
        raise ValueError(
            f"bad machine spec {text!r} (expected NAME=CONSTRUCTION[:key=val,...])"
        )
    construction, _, params = rest.partition(":")
    if not construction:
        raise ValueError(f"bad machine spec {text!r}: missing construction")
    return name, construction, _parse_params(params)


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal
    from pathlib import Path

    from repro.serve.server import ReproServer, ServeConfig, ServeError

    try:
        machines = tuple(_parse_machine_spec(m) for m in args.machine)
    except ValueError as exc:
        log.error("serve: %s", exc)
        return 2
    server = ReproServer(
        ServeConfig(
            host=args.host,
            port=args.port,
            telemetry_interval=args.telemetry_interval,
            subscriber_queue=args.subscriber_queue,
            machines=machines,
        )
    )

    async def _run() -> None:
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(sig, server.request_shutdown)
        await server.start()
        if args.port_file:
            # Rendezvous for scripts that started us with --port 0.
            Path(args.port_file).write_text(f"{server.port}\n", encoding="utf-8")
        await server.serve_until_shutdown()

    try:
        asyncio.run(_run())
    except ServeError as exc:
        log.error("serve: %s", exc)
        return 2
    except OSError as exc:  # e.g. address already in use
        log.error("serve: cannot listen on %s:%d: %s", args.host, args.port, exc)
        return 1
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve.client import LoadGenConfig, LoadGenerator, ServeRequestError
    from repro.util.serialization import save_json

    try:
        params = _parse_params(args.params)
    except ValueError as exc:
        log.error("loadgen: %s", exc)
        return 2
    config = LoadGenConfig(
        host=args.host,
        port=args.port,
        machine=args.machine,
        construction=args.construction,
        params=params or LoadGenConfig().params,
        clients=args.clients,
        requests=args.requests,
        event_fraction=args.event_fraction,
        pattern=args.pattern,
        messages=args.messages,
        seed=args.seed,
        router=args.router,
        qos_classes=args.qos_classes,
        credits=args.credits,
    )
    try:
        report = asyncio.run(LoadGenerator(config).run())
    except (ConnectionError, OSError) as exc:
        log.error("loadgen: cannot reach daemon at %s:%d: %s", args.host, args.port, exc)
        return 1
    except ServeRequestError as exc:
        log.error("loadgen: setup failed: %s (%s)", exc, exc.code)
        return 1
    totals = report["totals"]
    latency = report["latency"]
    print(
        f"loadgen: {totals['requests']} requests from {config.clients} clients "
        f"in {report['elapsed_s']:.2f}s ({report['requests_per_s']:.0f} req/s)"
    )
    print(
        f"  ok={totals['ok']} errors={totals['errors']} "
        f"client_exceptions={totals['client_exceptions']} "
        f"machine_died={totals['machine_died']}"
    )
    if latency.get("count"):
        print(
            f"  latency p50={latency['p50_ms']:.3g}ms p99={latency['p99_ms']:.3g}ms "
            f"max={latency['max_ms']:.3g}ms"
        )
    if args.out:
        save_json(args.out, report)
        log.info("loadgen report written to %s", args.out)
    clean = (
        totals["errors"] == 0
        and totals["client_exceptions"] == 0
        and not totals["machine_died"]
    )
    return 0 if clean else 1


def _add_construction_args(parser: argparse.ArgumentParser) -> None:
    """Construction-sizing flags shared by ``run`` and ``lifetime``.

    One flag per factory kwarg named in :data:`_RUN_PARAMS`; ``None``
    defaults mean "not passed to the factory".  A single definition keeps
    the two subcommands from drifting apart.
    """
    parser.add_argument("--d", type=int, default=None)
    parser.add_argument("--b", type=int, default=None)
    parser.add_argument("--s", type=int, default=None)
    parser.add_argument("--t", type=int, default=None)
    parser.add_argument("--n", type=int, default=None)
    parser.add_argument("--k-sub", dest="k_sub", type=int, default=None)
    parser.add_argument("--h", type=int, default=None)
    parser.add_argument("--c", type=float, default=None,
                        help="an: overhead constant used when --h is omitted")
    parser.add_argument("--blowup", type=float, default=None)
    parser.add_argument("--kind", type=str, default=None,
                        help="alon_chung: expander kind (gabber-galil | random-regular)")
    parser.add_argument("--replication", type=int, default=None)
    parser.add_argument("--c-r", dest="c_r", type=float, default=None,
                        help="replication: cluster-size constant used when "
                             "--replication is omitted")
    parser.add_argument("--sigma", type=int, default=None)
    parser.add_argument("--strategy", type=str, default=None,
                        help="bn: band-placement strategy (auto | straight | paper)")


def build_parser() -> argparse.ArgumentParser:
    ap = argparse.ArgumentParser(
        prog="repro-ft",
        description="Fault-tolerant mesh/torus constructions (Tamaki, SPAA'94/JCSS'96)",
    )
    ap.add_argument("--version", action="version", version=f"%(prog)s {__version__}")
    ap.add_argument("--log-level", dest="log_level", choices=_LOG_LEVELS,
                    default="info",
                    help="verbosity of status/diagnostic output on stderr "
                         "(primary results always go to stdout; default: info)")
    sub = ap.add_subparsers(dest="cmd", required=True)

    p_run = sub.add_parser(
        "run", help="generic experiment driver over any registered construction"
    )
    p_run.add_argument("--construction", choices=sorted(_RUN_PARAMS), required=True,
                       help="construction registry key")
    p_run.add_argument("--p", type=str, default="",
                       help="comma-separated node-fault probabilities")
    p_run.add_argument("--q", type=float, default=0.0, help="edge-fault probability")
    p_run.add_argument("--pattern", type=str, default="",
                       help="comma-separated adversarial patterns")
    p_run.add_argument("--k", type=int, default=None,
                       help="adversarial fault budget (default: construction's rating)")
    p_run.add_argument("--fault-model", dest="fault_model", action="append",
                       default=[], metavar="NAME[:key=val,...]",
                       help="registered fault model as a grid point "
                            "(repeatable), e.g. neighbor:p=0.002 or "
                            "component:rate=0.01,width=2 — see docs/faults.md")
    p_run.add_argument("--trials", type=int, default=10)
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument("--workers", type=int, default=1,
                       help="process-pool size (1 = serial; same results either way)")
    p_run.add_argument("--batch", action=argparse.BooleanOptionalAction, default=None,
                       help="legacy tier flag: --batch forces the numpy kernels, "
                            "--no-batch the per-trial loop (prefer --backend; "
                            "results are byte-identical either way)")
    _add_backend_arg(p_run)
    _add_streaming_args(p_run)
    p_run.add_argument("--out", type=str, default="", help="write results JSON here")
    p_run.add_argument("--name", type=str, default="", help="experiment name for the report")
    _add_construction_args(p_run)
    p_run.set_defaults(fn=_cmd_run)

    p_info = sub.add_parser("info", help="show derived parameters")
    p_info.add_argument("construction", choices=["bn", "dn"])
    p_info.add_argument("--d", type=int, default=2)
    p_info.add_argument("--b", type=int, default=3)
    p_info.add_argument("--s", type=int, default=1)
    p_info.add_argument("--t", type=int, default=2)
    p_info.add_argument("--n", type=int, default=70)
    p_info.set_defaults(fn=_cmd_info)

    p_bn = sub.add_parser("bn-trial", help="Monte-Carlo trials against B^d_n")
    p_bn.add_argument("--d", type=int, default=2)
    p_bn.add_argument("--b", type=int, default=3)
    p_bn.add_argument("--s", type=int, default=1)
    p_bn.add_argument("--t", type=int, default=2)
    p_bn.add_argument("--p", type=float, default=None, help="fault probability (default: b^-3d)")
    p_bn.add_argument("--trials", type=int, default=20)
    p_bn.add_argument("--seed", type=int, default=0)
    p_bn.add_argument("--health", action="store_true", help="also check healthiness")
    p_bn.set_defaults(fn=_cmd_bn_trial)

    p_dn = sub.add_parser("dn-attack", help="adversarial campaign against D^d_{n,k}")
    p_dn.add_argument("--d", type=int, default=2)
    p_dn.add_argument("--n", type=int, default=70)
    p_dn.add_argument("--b", type=int, default=2)
    p_dn.add_argument("--trials", type=int, default=5)
    p_dn.add_argument("--seed", type=int, default=0)
    p_dn.add_argument("--patterns", type=str, default="")
    p_dn.set_defaults(fn=_cmd_dn_attack)

    p_fig = sub.add_parser("figures", help="regenerate paper Figures 1 and 2")
    p_fig.set_defaults(fn=_cmd_figures)

    p_life = sub.add_parser(
        "lifetime",
        help="fault-arrival timelines driven to first recovery failure",
    )
    p_life.add_argument("--construction", choices=sorted(_RUN_PARAMS), default="bn",
                        help="construction registry key (default: bn)")
    p_life.add_argument("--timeline", choices=["uniform", "bernoulli", "burst",
                                               "adversarial"], default="uniform")
    p_life.add_argument("--rate", type=float, default=0.0,
                        help="bernoulli: per-step per-node fault probability")
    p_life.add_argument("--burst", type=int, default=0,
                        help="burst: co-located faults per step")
    p_life.add_argument("--pattern", type=str, default="",
                        help="adversarial: campaign pattern")
    p_life.add_argument("--k", type=int, default=None,
                        help="adversarial: planned campaign size (default: all nodes)")
    p_life.add_argument("--fault-model", dest="fault_model", type=str, default="",
                        metavar="NAME[:key=val,...]",
                        help="drive arrivals from a registered fault model "
                             "instead of --timeline (composes with "
                             "--repair-rate/--max-steps; see docs/faults.md)")
    p_life.add_argument("--repair-rate", dest="repair_rate", type=float, default=0.0,
                        help="probability each faulty node is fixed per step")
    p_life.add_argument("--max-steps", dest="max_steps", type=int, default=None,
                        help="timeline step bound (required for bernoulli/burst)")
    p_life.add_argument("--trials", type=int, default=5)
    p_life.add_argument("--seed", type=int, default=0)
    p_life.add_argument("--workers", type=int, default=1,
                        help="process-pool size (1 = serial; same results either way)")
    p_life.add_argument("--batch", action=argparse.BooleanOptionalAction, default=None,
                        help="legacy tier flag: --batch forces the batched "
                             "lifetime kernel, --no-batch the scalar loop "
                             "(prefer --backend; results are byte-identical "
                             "either way)")
    _add_backend_arg(p_life)
    _add_streaming_args(p_life)
    p_life.add_argument("--out", type=str, default="", help="write results JSON here")
    p_life.add_argument("--name", type=str, default="", help="experiment name")
    p_life.add_argument("--traffic", type=str, default="",
                        help="bn: route this traffic pattern on the evolving "
                             "network at --checkpoints")
    p_life.add_argument("--messages", type=int, default=200)
    p_life.add_argument("--checkpoints", type=str, default="",
                        help="comma-separated arrival counts for traffic snapshots")
    p_life.add_argument("--live-traffic", dest="live_traffic", action="store_true",
                        help="measure the aged machine at each checkpoint: map "
                             "every route through the current embedding, count "
                             "messages crossing broken host elements as "
                             "undeliverable, re-simulate the rest")
    p_life.add_argument("--router", choices=["dimension", "adaptive"],
                        default="dimension",
                        help="live snapshots: 'adaptive' detours broken routes "
                             "around the live fault set instead of refusing them")
    _add_construction_args(p_life)
    p_life.set_defaults(fn=_cmd_lifetime)

    p_traffic = sub.add_parser(
        "traffic",
        help="guest-torus workload measurements (closed batch or open loop)",
    )
    p_traffic.add_argument("--construction", choices=sorted(_RUN_PARAMS), default="bn",
                           help="construction registry key (default: bn)")
    p_traffic.add_argument("--pattern", type=str, default="uniform",
                           help="comma-separated traffic patterns")
    p_traffic.add_argument("--messages", type=int, default=200,
                           help="closed-loop batch size (ignored with --rate)")
    p_traffic.add_argument("--injection", choices=["bernoulli", "periodic"],
                           default="bernoulli",
                           help="open-loop injection process used with --rate")
    p_traffic.add_argument("--rate", type=str, default="",
                           help="comma-separated per-node per-cycle injection "
                                "rates; presence switches to the open-loop model")
    p_traffic.add_argument("--cycles", type=int, default=200,
                           help="open-loop injection horizon")
    p_traffic.add_argument("--warmup", type=int, default=0,
                           help="open-loop: measure messages injected at/after "
                                "this cycle")
    p_traffic.add_argument("--max-cycles", dest="max_cycles", type=int, default=10_000,
                           help="simulation bound; undelivered messages count "
                                "as timed_out")
    p_traffic.add_argument("--router", choices=["dimension", "adaptive"],
                           default="dimension",
                           help="routing algorithm (see docs/routing.md); on the "
                                "pristine guest torus both deliver identically")
    p_traffic.add_argument("--qos-classes", dest="qos_classes", type=int, default=1,
                           help="priority classes (1-3); messages are assigned "
                                "round-robin by id, class 0 wins arbitration")
    p_traffic.add_argument("--credits", type=int, default=0,
                           help="per-class in-flight message budget "
                                "(0 = unlimited); enables credit flow control")
    p_traffic.add_argument("--fault-model", dest="fault_model", type=str,
                           default="", metavar="NAME[:key=val,...]",
                           help="perturb the guest with a registered fault "
                                "model: crash models break routes, byzantine "
                                "nodes misroute/drop/corrupt traversing "
                                "messages (see docs/faults.md)")
    p_traffic.add_argument("--trials", type=int, default=5)
    p_traffic.add_argument("--seed", type=int, default=0)
    p_traffic.add_argument("--workers", type=int, default=1,
                           help="process-pool size (1 = serial; same results either way)")
    p_traffic.add_argument("--batch", action=argparse.BooleanOptionalAction, default=None,
                           help="legacy tier flag: --batch forces the vectorized "
                                "simulator kernel, --no-batch the scalar engine "
                                "(prefer --backend; results are byte-identical "
                                "either way)")
    _add_backend_arg(p_traffic)
    _add_streaming_args(p_traffic)
    p_traffic.add_argument("--out", type=str, default="", help="write results JSON here")
    p_traffic.add_argument("--name", type=str, default="", help="experiment name")
    _add_construction_args(p_traffic)
    p_traffic.set_defaults(fn=_cmd_traffic)

    p_conf = sub.add_parser(
        "conformance",
        help="differential-oracle + golden-artifact gate over every backend",
    )
    p_conf.add_argument("--quick", action="store_true",
                        help="the CI tier: same oracles, reduced seed/shape matrix")
    p_conf.add_argument("--update-golden", dest="update_golden", action="store_true",
                        help="resnapshot the golden artifacts before checking "
                             "(review the JSON diff like any source change)")
    p_conf.add_argument("--golden-dir", dest="golden_dir", type=str, default="",
                        help="golden artifact directory "
                             "(default: tests/golden of the source checkout)")
    p_conf.set_defaults(fn=_cmd_conformance)

    p_serve = sub.add_parser(
        "serve",
        help="long-lived operator daemon (event ingest, queries, telemetry)",
    )
    p_serve.add_argument("--host", type=str, default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=7494,
                         help="listen port (0 = ephemeral; see --port-file)")
    p_serve.add_argument("--machine", action="append", default=[],
                         metavar="NAME=CONSTRUCTION[:key=val,...]",
                         help="machine to create at startup (repeatable), e.g. "
                              "m0=bn:d=2,b=3,s=1,t=2; clients can also create "
                              "machines over the wire")
    p_serve.add_argument("--telemetry-interval", dest="telemetry_interval",
                         type=float, default=1.0,
                         help="seconds between pushed telemetry snapshots")
    p_serve.add_argument("--subscriber-queue", dest="subscriber_queue",
                         type=int, default=16,
                         help="per-subscriber snapshot queue depth before "
                              "drop-and-count backpressure kicks in")
    p_serve.add_argument("--port-file", dest="port_file", type=str, default="",
                         help="write the bound port here once listening "
                              "(rendezvous for scripts using --port 0)")
    p_serve.set_defaults(fn=_cmd_serve)

    p_load = sub.add_parser(
        "loadgen",
        help="sustained mixed workload against a running serve daemon",
    )
    p_load.add_argument("--host", type=str, default="127.0.0.1")
    p_load.add_argument("--port", type=int, default=7494)
    p_load.add_argument("--machine", type=str, default="loadgen",
                        help="machine name to create (exist_ok) and target")
    p_load.add_argument("--construction", choices=sorted(_RUN_PARAMS), default="bn")
    p_load.add_argument("--params", type=str, default="",
                        help="construction kwargs, e.g. d=2,b=3,s=1,t=2")
    p_load.add_argument("--clients", type=int, default=4,
                        help="concurrent client connections")
    p_load.add_argument("--requests", type=int, default=1000,
                        help="total requests across all clients")
    p_load.add_argument("--event-fraction", dest="event_fraction", type=float,
                        default=0.5,
                        help="fraction of requests that are fault/repair events "
                             "(the rest are live traffic queries)")
    p_load.add_argument("--pattern", type=str, default="uniform")
    p_load.add_argument("--messages", type=int, default=32,
                        help="messages per traffic query")
    p_load.add_argument("--router", choices=["dimension", "adaptive"],
                        default="dimension",
                        help="router each traffic query asks the daemon for")
    p_load.add_argument("--qos-classes", dest="qos_classes", type=int, default=1,
                        help="priority classes per traffic query (1-3)")
    p_load.add_argument("--credits", type=int, default=0,
                        help="per-class in-flight budget per query (0 = unlimited)")
    p_load.add_argument("--seed", type=int, default=0)
    p_load.add_argument("--out", type=str, default="",
                        help="write the full loadgen report JSON here")
    p_load.set_defaults(fn=_cmd_loadgen)

    p_route = sub.add_parser("route", help="routing sim on a recovered torus")
    p_route.add_argument("--b", type=int, default=3)
    p_route.add_argument("--s", type=int, default=1)
    p_route.add_argument("--t", type=int, default=2)
    p_route.add_argument("--pattern", default="uniform")
    p_route.add_argument("--messages", type=int, default=200)
    p_route.add_argument("--seed", type=int, default=0)
    p_route.set_defaults(fn=_cmd_route)
    return ap


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    _setup_logging(args.log_level, timestamps=args.cmd == "serve")
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
