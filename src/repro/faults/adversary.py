"""Adversarial (worst-case) fault campaigns for Theorem 3 / 13.

``D^d_{n,k}`` must survive **any** ``k`` faults.  We cannot enumerate all
fault sets, so the test/benchmark harness attacks it with structured
campaigns that target the construction's pressure points:

* ``random``      uniformly random nodes,
* ``cluster``     a tight ball (stresses one region of bands),
* ``rows``        faults spread to hit as many distinct dim-0 coordinates as
                  possible (stresses the first pigeonhole),
* ``cols``        same for the last dimension (stresses the cascade's end),
* ``diagonal``    faults along a wrap-around diagonal (hits every residue
                  class in every dimension — the classic worst case for
                  straight-band schemes),
* ``residue``     all faults in a single residue class mod (b+1) of dim 0
                  (maximises the number that must be passed to dim 1).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.faults.registry import ADVERSARY_PATTERN_NAMES

__all__ = ["ADVERSARY_PATTERNS", "adversarial_node_faults"]


def _random(shape, k, rng):
    size = int(np.prod(shape))
    return rng.choice(size, size=min(k, size), replace=False)


def _cluster(shape, k, rng):
    # Fill a compact axis-aligned box around a random corner.
    side = int(np.ceil(k ** (1.0 / len(shape))))
    corner = [int(rng.integers(0, s)) for s in shape]
    grids = [
        (corner[a] + np.arange(min(side, shape[a]))) % shape[a] for a in range(len(shape))
    ]
    mesh = np.meshgrid(*grids, indexing="ij")
    coords = np.stack([mm.ravel() for mm in mesh], axis=-1)
    flat = np.ravel_multi_index(coords.T, shape)
    return flat[:k]


def _spread_axis(axis: int):
    def inner(shape, k, rng):
        # One fault per coordinate value along `axis`, cycling; other
        # coordinates random.
        d = len(shape)
        ax = axis % d
        coords = np.empty((k, d), dtype=np.int64)
        coords[:, ax] = np.arange(k) % shape[ax]
        for a in range(d):
            if a != ax:
                coords[:, a] = rng.integers(0, shape[a], size=k)
        flat = np.unique(np.ravel_multi_index(coords.T, shape))
        # Top up duplicates with random picks.
        if len(flat) < k:
            pool = np.setdiff1d(
                rng.choice(int(np.prod(shape)), size=min(4 * k, int(np.prod(shape))), replace=False),
                flat,
            )
            flat = np.concatenate([flat, pool[: k - len(flat)]])
        return flat[:k]

    return inner


def _diagonal(shape, k, rng):
    start = [int(rng.integers(0, s)) for s in shape]
    steps = np.arange(k)
    coords = np.stack(
        [(start[a] + steps) % shape[a] for a in range(len(shape))], axis=-1
    )
    flat = np.unique(np.ravel_multi_index(coords.T, shape))
    if len(flat) < k:
        extra = _random(shape, 4 * k, rng)
        extra = np.setdiff1d(extra, flat)
        flat = np.concatenate([flat, extra[: k - len(flat)]])
    return flat[:k]


def _residue(shape, k, rng, period_hint: int | None = None):
    # All faults share dim-0 residue r mod (period); maximises what the
    # first dimension's pigeonhole must pass downstream.
    period = period_hint or max(2, int(round(k ** (1.0 / 3.0))) + 1)
    r = int(rng.integers(0, period))
    rows = np.arange(r, shape[0], period)
    d = len(shape)
    coords = np.empty((k, d), dtype=np.int64)
    coords[:, 0] = rows[np.arange(k) % len(rows)]
    for a in range(1, d):
        coords[:, a] = rng.integers(0, shape[a], size=k)
    flat = np.unique(np.ravel_multi_index(coords.T, shape))
    if len(flat) < k:
        extra = np.setdiff1d(_random(shape, min(4 * k, int(np.prod(shape))), rng), flat)
        flat = np.concatenate([flat, extra[: k - len(flat)]])
    return flat[:k]


ADVERSARY_PATTERNS: dict[str, Callable] = {
    "random": _random,
    "cluster": _cluster,
    "rows": _spread_axis(0),
    "cols": _spread_axis(-1),
    "diagonal": _diagonal,
    "residue": _residue,
}

# The canonical name pool lives in the import-light registry; the
# implementation table must match it key for key.
assert tuple(sorted(ADVERSARY_PATTERNS)) == ADVERSARY_PATTERN_NAMES


def pigeonhole_attack(params, rng: np.random.Generator) -> np.ndarray:
    """Adaptive attack on ``D^d_{n,k}``'s separator pigeonhole.

    The recovery picks, per dimension ``i``, the offset class mod
    ``b_i + 1`` holding the fewest faults; at most ``k_i/(b_i+1)`` faults
    pass downstream.  The strongest k-fault set therefore (a) spreads
    dim-0 coordinates *uniformly over residues* mod ``b_1+1`` so every
    offset keeps ``~k/(b_1+1)`` survivors, and (b) recursively spreads the
    survivors' next coordinates the same way.  Theorem 13 is tight enough
    to absorb exactly this — the attack must still fail at the rated k
    (asserted by tests/benchmarks).

    ``params``: a :class:`repro.core.params.DnParams`.
    Returns a boolean fault array with exactly ``k`` faults.
    """
    shape = params.shape
    d = params.d
    k = params.k
    coords = np.empty((k, d), dtype=np.int64)
    for axis in range(d):
        period = params.width(axis + 1) + 1
        mi = shape[axis]
        # Spread uniformly across residue classes, then across positions
        # inside each class, so no offset choice is much better than another.
        res = np.arange(k) % period
        reps = (np.arange(k) // period) % max(1, mi // period)
        coords[:, axis] = (res + reps * period) % mi
        # decorrelate axes so survivors stay spread in the next dimension
        coords[:, axis] = np.roll(coords[:, axis], axis * (k // max(1, d)))
    # randomise ties so repeated trials differ
    jitter = rng.permutation(k)
    coords = coords[jitter]
    flat = np.unique(np.ravel_multi_index(coords.T, shape))
    if len(flat) < k:  # collisions: top up randomly
        extra = np.setdiff1d(
            rng.choice(int(np.prod(shape)), size=min(4 * k, int(np.prod(shape))), replace=False),
            flat,
        )
        flat = np.concatenate([flat, extra[: k - len(flat)]])
    out = np.zeros(shape, dtype=bool)
    out.ravel()[flat[:k]] = True
    return out


def adversarial_node_faults(
    shape: Sequence[int],
    k: int,
    pattern: str,
    rng: np.random.Generator,
    **kwargs,
) -> np.ndarray:
    """Boolean fault array with exactly ``min(k, size)`` faults following
    ``pattern`` (one of :data:`ADVERSARY_PATTERNS`)."""
    shape = tuple(int(s) for s in shape)
    if pattern not in ADVERSARY_PATTERNS:
        raise KeyError(f"unknown pattern {pattern!r}; options: {sorted(ADVERSARY_PATTERNS)}")
    extra = kwargs if pattern == "residue" else {}
    flat = ADVERSARY_PATTERNS[pattern](shape, k, rng, **extra)
    out = np.zeros(shape, dtype=bool)
    out.ravel()[np.asarray(flat, dtype=np.int64)] = True
    return out
