"""Fault-arrival timelines: the lifetime subsystem's event generators.

A deployed machine does not draw one fault set and stop — faults *arrive*
over its lifetime (the introduction's ``Theta(N log^{-3d} N)`` claim is
about accumulated random faults), and related work studies networks under
sustained or adversarially scheduled arrivals.  A
:class:`FaultTimeline` turns that regime into a deterministic event
stream: given a node shape and a generator it yields
:class:`TimelineEvent`\\ s — ``"fault"`` arrivals and (for timelines with
a repair process) ``"repair"`` departures — grouped into integer *steps*.

Timeline kinds (registry :data:`TIMELINE_KINDS`):

* ``uniform``      one uniformly random node per step, each node at most
                   once (a random permutation — exactly the historical
                   :func:`repro.core.online.fault_lifetime` model);
* ``bernoulli``    every node fails independently with probability
                   ``rate`` at every step (a node may be hit again while
                   already faulty — such arrivals are redundant and the
                   drivers count them as trivially masked);
* ``burst``        ``burst`` co-located faults per step (a compact box at
                   a random corner, via the ``cluster`` adversary);
* ``adversarial``  one fault per step following a planned campaign from
                   :data:`repro.faults.adversary.ADVERSARY_PATTERNS`.

Any kind composes with :class:`RepairTimeline`, which fixes each
currently-faulty node with probability ``repair_rate`` after every step.

Determinism contract: a timeline is a pure function of ``(its parameters,
shape, rng stream)``.  All draws come from the ``rng`` passed to
:meth:`~FaultTimeline.events` in a fixed order, so the same seeded
generator always reproduces the same event stream — the property the
batched lifetime kernel (:mod:`repro.fastpath.lifetime_batch`) relies on
to replay scalar trials bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Protocol, Sequence, runtime_checkable

import numpy as np

from repro.faults.adversary import ADVERSARY_PATTERNS
from repro.faults.registry import TIMELINE_KINDS, make_fault_model

__all__ = [
    "AdversarialTimeline",
    "BernoulliTimeline",
    "BurstTimeline",
    "FaultTimeline",
    "ModelTimeline",
    "RepairTimeline",
    "TIMELINE_KINDS",
    "TimelineEvent",
    "UniformTimeline",
    "make_timeline",
]


@dataclass(frozen=True)
class TimelineEvent:
    """One lifetime event: node ``node`` (flat index) fails or is fixed."""

    step: int
    kind: str  # "fault" | "repair"
    node: int


@runtime_checkable
class FaultTimeline(Protocol):
    """Structural interface of every timeline kind."""

    name: str

    def events(
        self, shape: Sequence[int], rng: np.random.Generator
    ) -> Iterator[TimelineEvent]: ...


def _size(shape: Sequence[int]) -> int:
    return int(np.prod(np.asarray(shape, dtype=np.int64)))


@dataclass(frozen=True)
class UniformTimeline:
    """Uniformly random distinct nodes, one arrival per step.

    The single upfront ``rng.permutation(size)`` draw is bit-identical to
    the historical ``fault_lifetime`` sampling, so lifetime trials keyed
    with the same generator reproduce the pre-subsystem numbers exactly.
    """

    name: str = "uniform"

    def events(self, shape, rng) -> Iterator[TimelineEvent]:
        order = rng.permutation(_size(shape))
        for step, node in enumerate(order):
            yield TimelineEvent(step, "fault", int(node))


@dataclass(frozen=True)
class BernoulliTimeline:
    """Every node fails independently with probability ``rate`` per step.

    Arrivals within a step are emitted in flat-index order.  Nodes already
    faulty can be drawn again; drivers treat those arrivals as redundant
    (trivially masked).  ``steps`` bounds the stream — without it the
    process never ends.
    """

    rate: float
    steps: int
    name: str = "bernoulli"

    def __post_init__(self) -> None:
        if not (0.0 < self.rate <= 1.0):
            raise ValueError(f"rate={self.rate} out of (0, 1]")
        if self.steps < 1:
            raise ValueError("steps must be >= 1")

    def events(self, shape, rng) -> Iterator[TimelineEvent]:
        size = _size(shape)
        for step in range(self.steps):
            hits = np.flatnonzero(rng.random(size) < self.rate)
            for node in hits:
                yield TimelineEvent(step, "fault", int(node))


@dataclass(frozen=True)
class BurstTimeline:
    """``burst`` co-located faults per step (random compact box).

    Each step reuses the ``cluster`` adversary to draw one axis-aligned
    box at a random corner; bursts may overlap earlier ones.
    """

    burst: int
    steps: int
    name: str = "burst"

    def __post_init__(self) -> None:
        if self.burst < 1:
            raise ValueError("burst must be >= 1")
        if self.steps < 1:
            raise ValueError("steps must be >= 1")

    def events(self, shape, rng) -> Iterator[TimelineEvent]:
        shape = tuple(int(s) for s in shape)
        cluster = ADVERSARY_PATTERNS["cluster"]
        for step in range(self.steps):
            for node in cluster(shape, min(self.burst, _size(shape)), rng):
                yield TimelineEvent(step, "fault", int(node))


@dataclass(frozen=True)
class AdversarialTimeline:
    """A planned ``k``-fault campaign delivered one node per step.

    The whole campaign is drawn upfront from
    :data:`~repro.faults.adversary.ADVERSARY_PATTERNS` (``k = None``
    plans for the full node count), then replayed in plan order — the
    adversary commits to its schedule before seeing any repairs.
    """

    pattern: str
    k: int | None = None
    name: str = "adversarial"

    def __post_init__(self) -> None:
        if self.pattern not in ADVERSARY_PATTERNS:
            raise ValueError(
                f"unknown pattern {self.pattern!r}; options: {sorted(ADVERSARY_PATTERNS)}"
            )

    def events(self, shape, rng) -> Iterator[TimelineEvent]:
        shape = tuple(int(s) for s in shape)
        k = _size(shape) if self.k is None else min(self.k, _size(shape))
        plan = ADVERSARY_PATTERNS[self.pattern](shape, k, rng)
        for step, node in enumerate(np.asarray(plan, dtype=np.int64)):
            yield TimelineEvent(step, "fault", int(node))


@dataclass(frozen=True)
class RepairTimeline:
    """Wrap any timeline with a repair process at rate ``repair_rate``.

    After *every* step — including steps where the inner timeline emitted
    no arrivals — every currently-faulty node is fixed independently with
    probability ``repair_rate`` (one draw per faulty node, in ascending
    flat-index order — the fixed order is what keeps the composed stream
    deterministic).  When the inner timeline declares its span (a
    ``steps`` attribute, as the step-driven kinds do), repair passes
    continue through trailing arrival-free steps; arrival-exhausted kinds
    (``uniform``, ``adversarial``) end after their last step's pass.  The
    live fault set is tracked here, so kinds that can revisit nodes
    (``bernoulli``, ``burst``) genuinely re-fault repaired nodes.
    """

    inner: (
        "UniformTimeline | BernoulliTimeline | BurstTimeline | "
        "AdversarialTimeline | ModelTimeline"
    )
    repair_rate: float
    name: str = "repair"

    def __post_init__(self) -> None:
        if not (0.0 < self.repair_rate <= 1.0):
            raise ValueError(f"repair_rate={self.repair_rate} out of (0, 1]")

    def events(self, shape, rng) -> Iterator[TimelineEvent]:
        faulty: set[int] = set()

        def repairs(at_step: int) -> Iterator[TimelineEvent]:
            order = sorted(faulty)
            fixed = np.asarray(order)[rng.random(len(order)) < self.repair_rate]
            for node in fixed:
                faulty.discard(int(node))
                yield TimelineEvent(at_step, "repair", int(node))

        step: int | None = None
        for ev in self.inner.events(shape, rng):
            if step is None:
                # Steps before the first arrival have no faulty nodes, so
                # their repair passes are vacuous and elided.
                step = ev.step
            while ev.step > step:
                yield from repairs(step)  # close this step, empty ones too
                step += 1
            faulty.add(ev.node)
            yield ev
        if step is not None:
            total = getattr(self.inner, "steps", step + 1)
            while step < total:
                yield from repairs(step)
                step += 1


@dataclass(frozen=True)
class ModelTimeline:
    """A registered fault model's one-shot draw as an arrival stream.

    Samples the model once, then delivers its fault set one node per
    step in a random order (the model's own ``events`` default) — the
    model analogue of :class:`UniformTimeline`, and like it composable
    with :class:`RepairTimeline`.  ``model`` is the serialized
    ``{"name": ..., **params}`` dict (hashable-field-free dataclasses
    don't nest in frozen specs; the dict is the canonical form anyway).
    """

    model: dict
    name: str = "model"

    def events(self, shape, rng) -> Iterator[TimelineEvent]:
        return make_fault_model(dict(self.model)).events(
            tuple(int(s) for s in shape), rng
        )


def make_timeline(
    kind: str,
    *,
    rate: float = 0.0,
    burst: int = 0,
    pattern: str = "",
    k: int | None = None,
    repair_rate: float = 0.0,
    max_steps: int | None = None,
    fault_model: dict | None = None,
) -> FaultTimeline:
    """Build a timeline from :class:`~repro.api.protocol.LifetimeSpec` fields.

    ``max_steps`` bounds the step-driven kinds (``bernoulli``/``burst``
    require it — their streams are otherwise endless); ``repair_rate > 0``
    wraps the result in a :class:`RepairTimeline`.  A ``fault_model``
    dict replaces the timeline kind outright: the model's sampled fault
    set arrives one node per step (:class:`ModelTimeline`), still
    composable with the repair process.
    """
    if fault_model is not None:
        tl: FaultTimeline = ModelTimeline(model=fault_model)
        if repair_rate > 0.0:
            tl = RepairTimeline(inner=tl, repair_rate=repair_rate)
        return tl
    if kind == "uniform":
        tl: FaultTimeline = UniformTimeline()
    elif kind == "bernoulli":
        if max_steps is None:
            raise ValueError("bernoulli timelines need max_steps")
        tl = BernoulliTimeline(rate=rate, steps=max_steps)
    elif kind == "burst":
        if max_steps is None:
            raise ValueError("burst timelines need max_steps")
        tl = BurstTimeline(burst=burst, steps=max_steps)
    elif kind == "adversarial":
        tl = AdversarialTimeline(pattern=pattern, k=k)
    else:
        raise ValueError(f"unknown timeline kind {kind!r}; options: {TIMELINE_KINDS}")
    if repair_rate > 0.0:
        tl = RepairTimeline(inner=tl, repair_rate=repair_rate)
    return tl
