"""Random fault models.

Two models from the paper:

* **Node faults** (Theorems 1–2): every node fails independently with
  probability ``p``.  Represented as a boolean array over the host's node
  shape.
* **Half-edge faults** (Theorem 1, Section 4): every *half-edge* fails
  independently with probability ``sqrt(q)``; an edge is faulty iff both of
  its half-edges are.  This makes "supernode is good" events independent,
  which the proof (and our implementation of it) exploits.  Half-edge fault
  bits are drawn lazily per supernode-block to avoid materialising the huge
  ``A^2_n`` edge set.

Edge faults for constant-degree constructions are folded into node faults
exactly as the paper prescribes ("consider an edge fault to be the fault of
one of the incident nodes").
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = [
    "BernoulliNodeFaults",
    "HalfEdgeFaults",
    "paper_node_failure_probability",
    "fold_edge_faults_into_nodes",
]


def paper_node_failure_probability(n: int, d: int) -> float:
    """Theorem 2's fault regime ``p = log(n)^{-3d}`` (log base 2)."""
    if n < 3:
        raise ValueError("n too small")
    return math.log2(n) ** (-3 * d)


@dataclass(frozen=True)
class BernoulliNodeFaults:
    """I.i.d. node faults with probability ``p``."""

    p: float

    def __post_init__(self) -> None:
        if not (0.0 <= self.p <= 1.0):
            raise ValueError(f"p={self.p} out of [0, 1]")

    def sample(self, shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
        """Boolean fault array of the given node shape."""
        if self.p == 0.0:
            return np.zeros(tuple(shape), dtype=bool)
        return rng.random(tuple(shape)) < self.p

    def expected_faults(self, shape: Sequence[int]) -> float:
        return float(self.p * np.prod(np.asarray(shape, dtype=np.float64)))


class HalfEdgeFaults:
    """Half-edge fault sampler for Theorem 1's edge-fault model.

    Every (directed) half-edge fails independently with probability
    ``sqrt(q)``; an undirected edge is faulty iff both directions failed,
    making each edge faulty with probability exactly ``q``.

    Blocks are drawn deterministically from ``(root_seed, block key)`` so
    that the two directions of the same supernode pair can be sampled
    independently and reproducibly without storing anything.
    """

    def __init__(self, q: float, root_seed: int) -> None:
        if not (0.0 <= q <= 1.0):
            raise ValueError(f"q={q} out of [0, 1]")
        self.q = q
        self.sqrt_q = math.sqrt(q)
        self.root_seed = int(root_seed)

    def half_block(self, src_block: int, dst_block: int, shape: tuple[int, int]) -> np.ndarray:
        """Fault bits of half-edges *at the src side* for the ordered
        supernode pair ``(src_block, dst_block)``; entry ``[a, b]`` is the
        half-edge of edge (src a, dst b) incident to ``a``."""
        from repro.util.rng import spawn_rng

        if self.q == 0.0:
            return np.zeros(shape, dtype=bool)
        rng = spawn_rng(self.root_seed, "half-edge", src_block, dst_block)
        return rng.random(shape) < self.sqrt_q

    def edge_block(self, block_u: int, block_v: int, h_u: int, h_v: int) -> np.ndarray:
        """Boolean (h_u, h_v) matrix: True where edge (a in U, b in V) is faulty."""
        hu = self.half_block(block_u, block_v, (h_u, h_v))
        hv = self.half_block(block_v, block_u, (h_v, h_u))
        return hu & hv.T


def fold_edge_faults_into_nodes(
    faults: np.ndarray,
    q: float,
    degree: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Fold i.i.d. edge faults into node faults (constant-degree case).

    The paper: "we can consider an edge fault to be the fault of one of the
    incident nodes and have the resulting node failure probability still
    O(log^-3d n)".  A node with ``degree`` incident edges, each blamed on it
    with probability q/2 (split the blame evenly), fails additionally with
    probability ``1 - (1 - q/2)^degree``.  This keeps the marginal inflation
    conservative (an upper bound on the paper's ascription).
    """
    if q == 0.0:
        return faults
    p_extra = 1.0 - (1.0 - q / 2.0) ** degree
    extra = rng.random(faults.shape) < p_extra
    return faults | extra
