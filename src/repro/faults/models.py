"""Fault models: the registered crash/Byzantine samplers.

Two models from the paper:

* **Node faults** (Theorems 1–2): every node fails independently with
  probability ``p``.  Represented as a boolean array over the host's node
  shape.
* **Half-edge faults** (Theorem 1, Section 4): every *half-edge* fails
  independently with probability ``sqrt(q)``; an edge is faulty iff both of
  its half-edges are.  This makes "supernode is good" events independent,
  which the proof (and our implementation of it) exploits.  Half-edge fault
  bits are drawn lazily per supernode-block to avoid materialising the huge
  ``A^2_n`` edge set.

Three models beyond it, motivated by the related work (see docs/faults.md):

* :class:`ByzantineNodeFaults` — nodes stay up but misbehave (misroute /
  drop / corrupt traversing messages, per a weight mix);
* :class:`NeighborFaults` — a fault takes a node's *closed neighborhood*
  down with it (the neighbor-connectivity model);
* :class:`ComponentFaults` — correlated failure of axis-aligned
  components: slabs of ``width`` consecutive hyperplanes.

Every class satisfies the :class:`repro.faults.registry.FaultModel`
protocol uniformly — a frozen, comparable dataclass with a registry
``name``, a ``behavior`` declaration, a one-shot ``sample``, an
``events`` timeline view of the same draw, an analytic
``expected_faults`` and a JSON-able ``to_dict``.  Shapes are whatever
the consuming construction samples faults over (its lifetime shape).

Edge faults for constant-degree constructions are folded into node faults
exactly as the paper prescribes ("consider an edge fault to be the fault of
one of the incident nodes").
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass
from typing import ClassVar, Iterator, Sequence

import numpy as np

from repro.faults.registry import register_model

__all__ = [
    "BernoulliNodeFaults",
    "ByzantineNodeFaults",
    "ComponentFaults",
    "HalfEdgeFaults",
    "NeighborFaults",
    "paper_node_failure_probability",
    "fold_edge_faults_into_nodes",
]


def paper_node_failure_probability(n: int, d: int) -> float:
    """Theorem 2's fault regime ``p = log(n)^{-3d}`` (log base 2)."""
    if n < 3:
        raise ValueError("n too small")
    return math.log2(n) ** (-3 * d)


def _size(shape: Sequence[int]) -> int:
    size = 1
    for s in shape:
        size *= int(s)
    return size


def _one_shot_events(model, shape: Sequence[int], rng: np.random.Generator) -> Iterator:
    """Default ``events``: one sample, arrivals permuted one per step.

    Mirrors the ``uniform`` timeline's one-arrival-per-step stream so
    model timelines compose with
    :class:`~repro.faults.timeline.RepairTimeline` unchanged; only the
    model's sampled fault set ever arrives.
    """
    from repro.faults.timeline import TimelineEvent

    hit = np.flatnonzero(np.asarray(model.sample(shape, rng)).ravel())
    order = rng.permutation(len(hit))
    for step, j in enumerate(order):
        yield TimelineEvent(step=step, kind="fault", node=int(hit[j]))


class _ModelBase:
    """Shared protocol plumbing for the frozen dataclass models."""

    def events(self, shape: Sequence[int], rng: np.random.Generator) -> Iterator:
        return _one_shot_events(self, shape, rng)

    def to_dict(self) -> dict:
        return {"name": self.name, **asdict(self)}


@register_model
@dataclass(frozen=True)
class BernoulliNodeFaults(_ModelBase):
    """I.i.d. node faults with probability ``p``."""

    p: float

    name: ClassVar[str] = "bernoulli"
    behavior: ClassVar[str] = "crash"

    def __post_init__(self) -> None:
        if not (0.0 <= self.p <= 1.0):
            raise ValueError(f"p={self.p} out of [0, 1]")

    def sample(self, shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
        """Boolean fault array of the given node shape."""
        if self.p == 0.0:
            return np.zeros(tuple(shape), dtype=bool)
        return rng.random(tuple(shape)) < self.p

    def expected_faults(self, shape: Sequence[int]) -> float:
        return float(self.p * np.prod(np.asarray(shape, dtype=np.float64)))


@register_model
@dataclass(frozen=True)
class HalfEdgeFaults(_ModelBase):
    """Half-edge fault sampler for Theorem 1's edge-fault model.

    Every (directed) half-edge fails independently with probability
    ``sqrt(q)``; an undirected edge is faulty iff both directions failed,
    making each edge faulty with probability exactly ``q``.

    Blocks are drawn deterministically from ``(root_seed, block key)`` so
    that the two directions of the same supernode pair can be sampled
    independently and reproducibly without storing anything.
    """

    q: float
    root_seed: int = 0

    name: ClassVar[str] = "halfedge"
    behavior: ClassVar[str] = "crash"

    def __post_init__(self) -> None:
        if not (0.0 <= self.q <= 1.0):
            raise ValueError(f"q={self.q} out of [0, 1]")
        object.__setattr__(self, "root_seed", int(self.root_seed))

    @property
    def sqrt_q(self) -> float:
        return math.sqrt(self.q)

    def half_block(self, src_block: int, dst_block: int, shape: tuple[int, int]) -> np.ndarray:
        """Fault bits of half-edges *at the src side* for the ordered
        supernode pair ``(src_block, dst_block)``; entry ``[a, b]`` is the
        half-edge of edge (src a, dst b) incident to ``a``."""
        from repro.util.rng import spawn_rng

        if self.q == 0.0:
            return np.zeros(shape, dtype=bool)
        rng = spawn_rng(self.root_seed, "half-edge", src_block, dst_block)
        return rng.random(shape) < self.sqrt_q

    def edge_block(self, block_u: int, block_v: int, h_u: int, h_v: int) -> np.ndarray:
        """Boolean (h_u, h_v) matrix: True where edge (a in U, b in V) is faulty."""
        hu = self.half_block(block_u, block_v, (h_u, h_v))
        hv = self.half_block(block_v, block_u, (h_v, h_u))
        return hu & hv.T

    def sample(self, shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
        """Node-state view: half-edge faults fail no node outright."""
        return np.zeros(tuple(shape), dtype=bool)

    def expected_faults(self, shape: Sequence[int]) -> float:
        """Expected faulty *edges* of the ``shape`` torus (q per edge)."""
        return float(self.q * _size(shape) * len(tuple(shape)))


@register_model
@dataclass(frozen=True)
class ByzantineNodeFaults(_ModelBase):
    """Each node independently Byzantine with probability ``rate``.

    Byzantine nodes stay up — they keep routing — but a message whose
    route traverses one as an *intermediate* hop is perturbed according
    to the behavior mix: ``misroute`` forwards it to a wrong neighbor
    (it still arrives, late), ``drop`` discards it at the traitor,
    ``corrupt`` delivers it on time with damaged payload.  The weights
    need not sum to one; they are normalised (see :meth:`mix`).
    """

    rate: float
    misroute: float = 1.0
    drop: float = 1.0
    corrupt: float = 1.0

    name: ClassVar[str] = "byzantine"
    behavior: ClassVar[str] = "byzantine"

    def __post_init__(self) -> None:
        if not (0.0 <= self.rate <= 1.0):
            raise ValueError(f"rate={self.rate} out of [0, 1]")
        for w in ("misroute", "drop", "corrupt"):
            if getattr(self, w) < 0:
                raise ValueError(f"{w} weight must be >= 0, got {getattr(self, w)}")
        if self.misroute + self.drop + self.corrupt <= 0:
            raise ValueError("behavior mix weights must not all be zero")

    def mix(self) -> tuple[float, float, float]:
        """Normalised (misroute, drop, corrupt) action probabilities."""
        total = self.misroute + self.drop + self.corrupt
        return (self.misroute / total, self.drop / total, self.corrupt / total)

    def sample(self, shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
        if self.rate == 0.0:
            return np.zeros(tuple(shape), dtype=bool)
        return rng.random(tuple(shape)) < self.rate

    def expected_faults(self, shape: Sequence[int]) -> float:
        return float(self.rate * _size(shape))


@register_model
@dataclass(frozen=True)
class NeighborFaults(_ModelBase):
    """Correlated crash faults: a failure takes the node's *closed*
    neighborhood down with it (the neighbor-connectivity model).

    Centers are drawn i.i.d. with probability ``p``; the fault set is
    the union of the centers' closed torus neighborhoods, so a node is
    faulty iff any member of its own closed neighborhood is a center.
    """

    p: float

    name: ClassVar[str] = "neighbor"
    behavior: ClassVar[str] = "crash"

    def __post_init__(self) -> None:
        if not (0.0 <= self.p <= 1.0):
            raise ValueError(f"p={self.p} out of [0, 1]")

    def sample(self, shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
        shape = tuple(shape)
        centers = rng.random(shape) < self.p
        out = centers.copy()
        for axis, n in enumerate(shape):
            if n < 2:
                continue
            out |= np.roll(centers, 1, axis=axis)
            out |= np.roll(centers, -1, axis=axis)
        return out

    def _neighborhood(self, shape: Sequence[int]) -> int:
        """Closed-neighborhood size of any node on the ``shape`` torus."""
        return 1 + sum(2 if n > 2 else 1 for n in shape if n >= 2)

    def expected_faults(self, shape: Sequence[int]) -> float:
        # Faulty iff any of the nbhd distinct closed-neighborhood members
        # is a center — exact, not a union bound.
        miss = (1.0 - self.p) ** self._neighborhood(tuple(shape))
        return float(_size(shape) * (1.0 - miss))


@register_model
@dataclass(frozen=True)
class ComponentFaults(_ModelBase):
    """Correlated crash faults of axis-aligned components.

    Along every axis, each coordinate independently starts a failed slab
    with probability ``rate``; a slab spans ``width`` consecutive
    hyperplanes (wrapping around the torus).  Models shared-component
    failures — a row driver, a backplane, a link group — rather than
    independent nodes.
    """

    rate: float
    width: int = 1

    name: ClassVar[str] = "component"
    behavior: ClassVar[str] = "crash"

    def __post_init__(self) -> None:
        if not (0.0 <= self.rate <= 1.0):
            raise ValueError(f"rate={self.rate} out of [0, 1]")
        if self.width < 1:
            raise ValueError(f"width must be >= 1, got {self.width}")

    def sample(self, shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
        shape = tuple(shape)
        out = np.zeros(shape, dtype=bool)
        for axis, n in enumerate(shape):
            starts = rng.random(n) < self.rate
            sel = starts.copy()
            for off in range(1, min(self.width, n)):
                sel |= np.roll(starts, off)
            if sel.any():
                index = [slice(None)] * len(shape)
                index[axis] = sel
                out[tuple(index)] = True
        return out

    def expected_faults(self, shape: Sequence[int]) -> float:
        # A coordinate on axis a is covered iff any of the min(width, n_a)
        # start positions behind it fired; a node survives iff every one
        # of its coordinates is uncovered — exact by independence.
        exponent = sum(min(self.width, int(n)) for n in shape)
        return float(_size(shape) * (1.0 - (1.0 - self.rate) ** exponent))


def fold_edge_faults_into_nodes(
    faults: np.ndarray,
    q: float,
    degree: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Fold i.i.d. edge faults into node faults (constant-degree case).

    The paper: "we can consider an edge fault to be the fault of one of the
    incident nodes and have the resulting node failure probability still
    O(log^-3d n)".  A node with ``degree`` incident edges, each blamed on it
    with probability q/2 (split the blame evenly), fails additionally with
    probability ``1 - (1 - q/2)^degree``.  This keeps the marginal inflation
    conservative (an upper bound on the paper's ascription).
    """
    if q == 0.0:
        return faults
    p_extra = 1.0 - (1.0 - q / 2.0) ** degree
    extra = rng.random(faults.shape) < p_extra
    return faults | extra
