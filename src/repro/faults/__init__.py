"""Fault models: i.i.d. random node/edge faults and adversarial campaigns."""

from repro.faults.models import (
    BernoulliNodeFaults,
    HalfEdgeFaults,
    paper_node_failure_probability,
)
from repro.faults.adversary import (
    ADVERSARY_PATTERNS,
    adversarial_node_faults,
)
from repro.faults.timeline import (
    TIMELINE_KINDS,
    FaultTimeline,
    TimelineEvent,
    make_timeline,
)

__all__ = [
    "BernoulliNodeFaults",
    "HalfEdgeFaults",
    "paper_node_failure_probability",
    "ADVERSARY_PATTERNS",
    "adversarial_node_faults",
    "TIMELINE_KINDS",
    "FaultTimeline",
    "TimelineEvent",
    "make_timeline",
]
