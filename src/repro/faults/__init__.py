"""Fault models: registered crash/Byzantine samplers, adversarial
campaigns, and fault-arrival timelines with repair processes.

The package's seam is :mod:`repro.faults.registry` — the FaultModel
protocol, the model registry and the canonical name pools — which is
stdlib-only at import.  The numpy-backed submodules are therefore
re-exported lazily (PEP 562): ``from repro.faults import registry``
or ``make_fault_model`` stays import-light, while the historical
``from repro.faults import BernoulliNodeFaults`` style keeps working.
"""

from repro.faults.registry import (
    ADVERSARY_PATTERN_NAMES,
    BEHAVIORS,
    FAULT_PATTERN_NAMES,
    TIMELINE_KINDS,
    FaultModel,
    fault_model_names,
    make_fault_model,
    model_token,
    register_model,
    validate_model_dict,
)

__all__ = [
    "ADVERSARY_PATTERNS",
    "ADVERSARY_PATTERN_NAMES",
    "BEHAVIORS",
    "BernoulliNodeFaults",
    "ByzantineNodeFaults",
    "ComponentFaults",
    "FAULT_PATTERN_NAMES",
    "FaultModel",
    "FaultTimeline",
    "HalfEdgeFaults",
    "NeighborFaults",
    "TIMELINE_KINDS",
    "TimelineEvent",
    "adversarial_node_faults",
    "fault_model_names",
    "make_fault_model",
    "make_timeline",
    "model_token",
    "paper_node_failure_probability",
    "register_model",
    "validate_model_dict",
]

#: Lazily-resolved attribute -> defining submodule (PEP 562).
_LAZY = {
    "BernoulliNodeFaults": "repro.faults.models",
    "ByzantineNodeFaults": "repro.faults.models",
    "ComponentFaults": "repro.faults.models",
    "HalfEdgeFaults": "repro.faults.models",
    "NeighborFaults": "repro.faults.models",
    "paper_node_failure_probability": "repro.faults.models",
    "ADVERSARY_PATTERNS": "repro.faults.adversary",
    "adversarial_node_faults": "repro.faults.adversary",
    "FaultTimeline": "repro.faults.timeline",
    "TimelineEvent": "repro.faults.timeline",
    "make_timeline": "repro.faults.timeline",
}


def __getattr__(name: str):
    try:
        module_name = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__() -> list:
    return sorted(set(globals()) | set(_LAZY))
