"""The FaultModel protocol, its registry, and the canonical name pools.

This module is the single seam every layer consumes instead of pattern
literals: specs validate model dicts here, engines ask a model for its
``behavior`` semantics, the testkit derives its name pools from here,
and the CLI lists these names in its errors.  It is deliberately
**stdlib-only at import time** (no numpy) so :mod:`repro.api.protocol`
can import it at module top and stay import-light; the numpy-backed
model classes in :mod:`repro.faults.models` are pulled in lazily, the
first time a model dict is actually resolved.

A *fault model* is anything satisfying :class:`FaultModel`:

* ``name`` — its registry key (``"bernoulli"``, ``"byzantine"``, ...);
* ``behavior`` — ``"crash"`` (faulty elements drop out of the machine)
  or ``"byzantine"`` (faulty nodes stay up and misbehave: misroute,
  drop or corrupt traversing messages);
* ``sample(shape, rng)`` — one-shot boolean fault state over ``shape``;
* ``events(shape, rng)`` — the same draw unrolled into a fault-arrival
  timeline (one :class:`~repro.faults.timeline.TimelineEvent` per
  step), composable with repair streams;
* ``expected_faults(shape)`` — the analytic mean of ``sample().sum()``;
* ``to_dict()`` — the serialized form ``{"name": ..., **params}``.

Specs carry models as plain dicts (``{"name": "byzantine",
"rate": 0.05}``) so serialization stays trivially JSON-stable;
:func:`make_fault_model` turns the dict back into the registered class
and :func:`model_token` canonicalises it into the RNG-key token that
keeps model-bearing trial streams independent of the model-free ones.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Iterable, Protocol, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

__all__ = [
    "ADVERSARY_PATTERN_NAMES",
    "BEHAVIORS",
    "FAULT_PATTERN_NAMES",
    "TIMELINE_KINDS",
    "FaultModel",
    "fault_model_names",
    "get_model_class",
    "make_fault_model",
    "model_token",
    "register_model",
    "validate_model_dict",
]

#: Behavior semantics a model may declare.  ``crash`` faults remove the
#: element from the machine (the paper's model); ``byzantine`` nodes stay
#: up and misbehave in the traffic engines.
BEHAVIORS = ("crash", "byzantine")

#: Canonical adversarial campaign names — the single source the
#: ``repro.faults.adversary`` pattern table, spec validation and the
#: testkit pools all derive from (they historically each kept a literal
#: copy guarded by sync tests).
ADVERSARY_PATTERN_NAMES = ("cluster", "cols", "diagonal", "random", "residue", "rows")

#: Every valid ``FaultSpec.pattern``: the Bernoulli default plus the
#: adversarial campaigns.
FAULT_PATTERN_NAMES = ("bernoulli",) + ADVERSARY_PATTERN_NAMES

#: Canonical fault-arrival timeline kinds (``repro.faults.timeline``
#: builds them; ``LifetimeSpec`` validates against them).
TIMELINE_KINDS = ("uniform", "bernoulli", "burst", "adversarial")


@runtime_checkable
class FaultModel(Protocol):
    """Structural interface of a registered fault model."""

    name: str
    behavior: str

    def sample(self, shape, rng: "np.random.Generator") -> "np.ndarray":
        """One-shot boolean fault state over ``shape``."""
        ...  # pragma: no cover - protocol

    def events(self, shape, rng: "np.random.Generator") -> Iterable:
        """The model's draw as a fault-arrival timeline event stream."""
        ...  # pragma: no cover - protocol

    def expected_faults(self, shape) -> float:
        """Analytic expectation of ``sample(shape, rng).sum()``."""
        ...  # pragma: no cover - protocol

    def to_dict(self) -> dict:
        """Serialized form: ``{"name": self.name, **params}``."""
        ...  # pragma: no cover - protocol


_REGISTRY: dict[str, type] = {}
_LOADED = False


def register_model(cls: type) -> type:
    """Class decorator: register ``cls`` under its ``name`` attribute."""
    name = getattr(cls, "name", None)
    if not isinstance(name, str) or not name:
        raise TypeError(f"{cls.__name__} needs a class-level `name` string")
    if getattr(cls, "behavior", None) not in BEHAVIORS:
        raise TypeError(
            f"{cls.__name__}.behavior must be one of {BEHAVIORS}"
        )
    if name in _REGISTRY and _REGISTRY[name] is not cls:
        raise ValueError(f"fault model {name!r} already registered")
    _REGISTRY[name] = cls
    return cls


def _load() -> None:
    """Pull in the model definitions (numpy-heavy) exactly once."""
    global _LOADED
    if not _LOADED:
        import repro.faults.models  # noqa: F401  (registers via decorator)

        _LOADED = True


def fault_model_names() -> tuple[str, ...]:
    """Sorted registry keys — the names spec errors and the CLI list."""
    _load()
    return tuple(sorted(_REGISTRY))


def get_model_class(name: str) -> type:
    _load()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown fault model {name!r}; options: {', '.join(fault_model_names())}"
        ) from None


def make_fault_model(d: dict) -> FaultModel:
    """Instantiate the registered model a ``{"name": ..., **params}``
    dict describes; parameter validation is the model's own."""
    if not isinstance(d, dict) or not isinstance(d.get("name"), str):
        raise ValueError(
            "fault_model must be a dict with a 'name' key; options: "
            f"{', '.join(fault_model_names())}"
        )
    cls = get_model_class(d["name"])
    params = {k: v for k, v in d.items() if k != "name"}
    try:
        return cls(**params)
    except TypeError as exc:
        raise ValueError(f"bad {d['name']!r} fault-model parameters: {exc}") from exc


def validate_model_dict(d: dict) -> None:
    """Raise ``ValueError`` unless ``d`` resolves to a valid model.

    Instantiates the model so its own ``__post_init__`` range checks run
    — the one place spec validation and CLI parsing both defer to.
    """
    make_fault_model(d)


def model_token(d: dict) -> str:
    """Canonical RNG-key token of a model dict.

    Deterministic across processes (sorted keys, no whitespace), and
    appended to a trial's RNG key *only* when a spec carries a model —
    model-free streams stay byte-identical to the pre-model code.
    """
    return json.dumps(d, sort_keys=True, separators=(",", ":"))
