"""Regenerate the paper's two figures as data + ASCII.

* **Figure 1** — "Bands on B^2_n": a healthy faulty instance, the paper
  placement, bands winding around black regions.
* **Figure 2** — "Obtaining a row from the unmasked part of B^2_8": one
  reconstructed row crossing bands with diagonal jumps.  (The paper draws a
  toy ``n = 8``; our exact parameterisation's smallest instance is
  ``n = 36`` — same structure, more columns.)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.bn import BTorus
from repro.core.params import BnParams
from repro.viz.ascii_art import render_bands, render_row_trace

__all__ = ["figure1", "figure2"]


@dataclass
class Figure:
    title: str
    text: str
    meta: dict


def _demo_instance() -> tuple[BTorus, np.ndarray]:
    params = BnParams(d=2, b=3, s=1, t=2)
    bt = BTorus(params)
    faults = np.zeros(params.shape, dtype=bool)
    faults[20, 20] = True  # a region mid-torus
    faults[46, 2] = True  # a second region near the wrap
    return bt, faults


def figure1() -> Figure:
    """Bands on ``B^2_n`` (paper Figure 1)."""
    bt, faults = _demo_instance()
    from repro.core.placement import place_paper

    bands = place_paper(bt.params, faults)
    bands.validate(faults)
    text = render_bands(bt.params, bands, faults)
    wandering = int((bands.bottoms != bands.bottoms[:, :1]).any(axis=1).sum())
    return Figure(
        title="Figure 1: bands on B^2_n (paper placement around two faults)",
        text=text,
        meta={
            "bands": bands.num_bands,
            "wandering_bands": wandering,
            "faults": int(faults.sum()),
        },
    )


def figure2() -> Figure:
    """A reconstructed row hopping over bands (paper Figure 2)."""
    bt, faults = _demo_instance()
    from repro.core.placement import place_paper
    from repro.core.reconstruction import extract_torus

    bands = place_paper(bt.params, faults)
    rec = extract_torus(bt.bn, bands, faults)
    n = bt.params.n
    # guest row i=?: pick the row whose trace uses the most jumps
    phi = rec.phi.reshape(n, n)
    host_rows = bt.bn.codec.axis_coord(phi, 0)
    jumps_per_row = (np.diff(host_rows, axis=1) != 0).sum(axis=1)
    i = int(np.argmax(jumps_per_row))
    text = render_row_trace(bt.params, bands, host_rows[i])
    return Figure(
        title=f"Figure 2: reconstructed row {i} of the fault-free torus",
        text=text,
        meta={
            "row": i,
            "jumps": int(jumps_per_row[i]),
            "verified_nodes": rec.stats["nodes"],
        },
    )
