"""ASCII renderings of bands, faults and row traces on ``B^2_n``.

Legend:
    ``.``  unmasked node          ``#``  band-masked node
    ``X``  fault (masked)         ``!``  fault left unmasked (an error)
    ``*``  row-trace node         ``/`` and ``\\``  diagonal jumps
"""

from __future__ import annotations

import numpy as np

from repro.core.bands import BandSet
from repro.core.params import BnParams

__all__ = ["render_bands", "render_row_trace"]


def render_bands(
    params: BnParams,
    bands: BandSet,
    faults: np.ndarray | None = None,
    *,
    max_width: int = 120,
) -> str:
    """Text picture of a banded ``B^2`` instance (dim 0 vertical, top = row
    m-1, matching the paper's Figure 1 orientation)."""
    if params.d != 2:
        raise ValueError("rendering is two-dimensional")
    m, n = params.m, params.n
    step = max(1, int(np.ceil(n / max_width)))
    mask = bands.mask()
    grid = np.full((m, n), ".", dtype="<U1")
    grid[mask] = "#"
    if faults is not None:
        fr, fc = np.nonzero(faults)
        for r, c in zip(fr, fc):
            grid[r, c] = "X" if mask[r, c] else "!"
    lines = []
    for r in range(m - 1, -1, -1):
        lines.append("".join(grid[r, ::step]))
    header = f"B^2_{n}  (m={m}, b={params.b}, bands={bands.num_bands}; col step {step})"
    return header + "\n" + "\n".join(lines)


def render_row_trace(
    params: BnParams,
    bands: BandSet,
    row_hosts: np.ndarray,
    *,
    max_width: int = 120,
) -> str:
    """Overlay one reconstructed row (host row index per column) on the band
    picture — the paper's Figure 2."""
    if params.d != 2:
        raise ValueError("rendering is two-dimensional")
    m, n = params.m, params.n
    mask = bands.mask()
    grid = np.full((m, n), ".", dtype="<U1")
    grid[mask] = "#"
    prev = None
    for z in range(n):
        r = int(row_hosts[z])
        grid[r, z] = "*"
        if prev is not None and r != prev:
            grid[prev, z] = "/" if (r - prev) % m == params.b else "\\"
        prev = r
    step = max(1, int(np.ceil(n / max_width)))
    lines = []
    for r in range(m - 1, -1, -1):
        lines.append("".join(grid[r, ::step]))
    jumps = int((np.diff(row_hosts) != 0).sum())
    header = (
        f"row trace on B^2_{n}: {jumps} diagonal jumps "
        "(* = row node, / up-jump, \\ down-jump)"
    )
    return header + "\n" + "\n".join(lines)
