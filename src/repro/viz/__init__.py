"""ASCII renderings of the paper's two figures (and general band views)."""

from repro.viz.ascii_art import render_bands, render_row_trace
from repro.viz.figures import figure1, figure2

__all__ = ["render_bands", "render_row_trace", "figure1", "figure2"]
