"""ASCII rendering of D^2_{n,k} recoveries (straight band grid).

Unlike ``B``'s winding bands, ``D``'s bands are straight rows/columns —
the picture is a grid of masked stripes with faults inside them.  Legend
as in :mod:`repro.viz.ascii_art` ('#' masked, 'X' masked fault,
'!' unmasked fault — never present after a successful recovery).
"""

from __future__ import annotations

import numpy as np

from repro.core.dn import DnRecovery

__all__ = ["render_dn"]


def render_dn(
    rec: DnRecovery, faults: np.ndarray | None = None, *, max_size: int = 100
) -> str:
    """Text picture of a 2-D ``D`` recovery (dim 0 vertical, top = last row)."""
    p = rec.params
    if p.d != 2:
        raise ValueError("rendering is two-dimensional")
    m0, m1 = p.shape
    masked0 = np.ones(m0, dtype=bool)
    masked0[rec.unmasked[0]] = False
    masked1 = np.ones(m1, dtype=bool)
    masked1[rec.unmasked[1]] = False
    grid = np.full((m0, m1), ".", dtype="<U1")
    grid[masked0, :] = "#"
    grid[:, masked1] = "#"
    if faults is not None:
        fr, fc = np.nonzero(faults)
        for r, c in zip(fr, fc):
            grid[r, c] = "X" if (masked0[r] or masked1[c]) else "!"
    step0 = max(1, int(np.ceil(m0 / max_size)))
    step1 = max(1, int(np.ceil(m1 / max_size)))
    lines = ["".join(grid[r, ::step1]) for r in range(m0 - 1, -1, -step0)]
    header = (
        f"D^2(n={p.n}, k={p.k}): {len(rec.bottoms[0])} row bands (width "
        f"{p.width(1)}), {len(rec.bottoms[1])} column bands (width {p.width(2)}); "
        f"steps ({step0},{step1})"
    )
    return header + "\n" + "\n".join(lines)
