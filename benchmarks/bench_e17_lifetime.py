"""E17 — the introduction's tolerated-fault-count claim.

"[B] tolerates Theta(N log^{-3d} N) random faults which is larger than the
best previously known constant-degree construction [BCH93b] that tolerates
Theta(N^{1/3})."

Executable form: inject uniformly random faults one at a time until
verified recovery first fails.  The measured lifetime should (a) grow with
N and (b) stay a bounded constant multiple of the theory's ``N b^{-3d}``
scale.  The ``N^{1/3}`` column is the BCH reference; the asymptotic
crossover (``N/log^{3d}N`` vs ``N^{1/3}``) lies beyond laptop sizes, so
the *shape* claim here is the scaling against ``N b^{-3d}``.
"""

from __future__ import annotations

from conftest import run_once

from repro.core.bn import BTorus
from repro.core.online import fault_lifetime
from repro.core.params import BnParams
from repro.util.tables import Table

CASES = [
    BnParams(d=2, b=3, s=1, t=2),  # N = 1 944
    BnParams(d=2, b=4, s=1, t=2),  # N = 12 288
    BnParams(d=2, b=4, s=1, t=4),  # N = 49 152
]
TRIALS = 5


def test_e17_random_fault_lifetime(benchmark, report):
    def compute():
        rows = []
        for params in CASES:
            bt = BTorus(params)
            lives = sorted(fault_lifetime(bt, seed=s) for s in range(TRIALS))
            median = lives[TRIALS // 2]
            theory = params.num_nodes * params.paper_fault_probability
            rows.append(
                [params.num_nodes, params.b, median,
                 f"{theory:.1f}", f"{median / theory:.1f}",
                 int(round(params.num_nodes ** (1 / 3)))]
            )
        return rows

    rows = run_once(benchmark, compute)
    table = Table(
        ["N", "b", "median lifetime", "N*b^-3d", "ratio", "N^{1/3} (BCH ref)"],
        title=f"E17: random faults survived before first failure ({TRIALS} trials)",
    )
    for r in rows:
        table.add_row(r)
    report("e17_lifetime", table)

    medians = [r[2] for r in rows]
    assert medians == sorted(medians)  # lifetime grows with N
    ratios = [float(r[4]) for r in rows]
    # bounded constant multiple of the Theta(N b^-3d) scale
    assert all(1.0 <= ratio <= 8.0 for ratio in ratios)
