"""E17 — the introduction's tolerated-fault-count claim.

"[B] tolerates Theta(N log^{-3d} N) random faults which is larger than the
best previously known constant-degree construction [BCH93b] that tolerates
Theta(N^{1/3})."

Executable form: drive a uniform fault-arrival timeline (one random node
per step) until verified recovery first fails.  The measured lifetime
should (a) grow with N and (b) stay a bounded constant multiple of the
theory's ``N b^{-3d}`` scale.  The ``N^{1/3}`` column is the BCH
reference; the asymptotic crossover (``N/log^{3d}N`` vs ``N^{1/3}``) lies
beyond laptop sizes, so the *shape* claim here is the scaling against
``N b^{-3d}``.

Since ISSUE 3 this experiment runs through the lifetime subsystem: one
``ExperimentSpec`` per size with a uniform ``LifetimeSpec`` grid point,
executed by ``ExperimentRunner`` on the batched lifetime kernel (the
scalar path is outcome-identical; the RNG streams are the historical
``fault_lifetime`` ones, so the numbers match the pre-subsystem bench).
The full ``ExperimentResult`` JSON per size is committed under
``benchmarks/results/`` alongside the table.
"""

from __future__ import annotations

from pathlib import Path

from conftest import run_once

from repro.api import ExperimentRunner, ExperimentSpec, LifetimeSpec
from repro.core.params import BnParams
from repro.util.tables import Table

RESULTS = Path(__file__).parent / "results"

CASES = [
    BnParams(d=2, b=3, s=1, t=2),  # N = 1 944
    BnParams(d=2, b=4, s=1, t=2),  # N = 12 288
    BnParams(d=2, b=4, s=1, t=4),  # N = 49 152
]
TRIALS = 5


def lifetime_spec_for(params: BnParams) -> ExperimentSpec:
    return ExperimentSpec(
        construction="bn",
        params={"d": params.d, "b": params.b, "s": params.s, "t": params.t},
        grid=(LifetimeSpec(),),
        trials=TRIALS,
        name=f"e17-bn-N{params.num_nodes}",
    )


def test_e17_random_fault_lifetime(benchmark, report):
    def compute():
        RESULTS.mkdir(exist_ok=True)  # fresh clones lack the results dir
        runner = ExperimentRunner(batch=True)
        rows = []
        for params in CASES:
            result = runner.run(lifetime_spec_for(params))
            result.save(RESULTS / f"e17_lifetime_N{params.num_nodes}.json")
            life = result.points[0].result
            median = int(life.median_lifetime)
            theory = params.num_nodes * params.paper_fault_probability
            rows.append(
                [params.num_nodes, params.b, median,
                 f"{theory:.1f}", f"{median / theory:.1f}",
                 int(round(params.num_nodes ** (1 / 3))),
                 f"{life.repair_fraction():.2f}"]
            )
        return rows

    rows = run_once(benchmark, compute)
    table = Table(
        ["N", "b", "median lifetime", "N*b^-3d", "ratio", "N^{1/3} (BCH ref)",
         "recompute frac"],
        title=(
            f"E17: random faults survived before first failure "
            f"({TRIALS} trials, ExperimentRunner + batched lifetime kernel)"
        ),
    )
    for r in rows:
        table.add_row(r)
    report("e17_lifetime", table)

    medians = [r[2] for r in rows]
    assert medians == sorted(medians)  # lifetime grows with N
    ratios = [float(r[4]) for r in rows]
    # bounded constant multiple of the Theta(N b^-3d) scale
    assert all(1.0 <= ratio <= 8.0 for ratio in ratios)
