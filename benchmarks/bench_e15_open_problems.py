"""E15 — Section 6's open problems, regenerated as data.

Question 1: constant-degree, O(N) nodes, constant-probability faults?
The paper's own constant-degree construction cannot (its tolerable rate
falls like b^{-3d}); the d = 1 case is settled by Alon–Chung.  The tables
quantify both halves of that discussion.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis.openproblems import bn_constant_p_decay, one_dimensional_answer
from repro.util.tables import Table

P_CONST = 0.002  # constant rate: ~b^-3d for the smallest case, 8x it for the largest
TRIALS = 10


def test_e15_constant_p_kills_constant_degree(benchmark, report):
    rows = run_once(benchmark, lambda: bn_constant_p_decay(P_CONST, trials=TRIALS))
    table = Table(
        ["construction", "nodes", "degree", f"survival @ p={P_CONST}"],
        title="E15: open problem 1 — constant-degree B at constant p decays with size",
    )
    for r in rows:
        table.add_row([r.label, r.size, r.degree, f"{r.survival:.2f}"])
    report("e15_constant_p", table)
    assert rows[-1].survival <= rows[0].survival
    assert rows[-1].survival <= 0.5  # the open problem is real


def test_e15_d1_settled_by_alon_chung(benchmark, report):
    rows = run_once(
        benchmark, lambda: one_dimensional_answer(0.05, trials=TRIALS, sizes=(40, 80, 160))
    )
    table = Table(
        ["construction", "nodes", "degree", "survival @ p=0.05"],
        title="E15b: d = 1 is settled (Alon–Chung): constant degree, linear size, constant p",
    )
    for r in rows:
        table.add_row([r.label, r.size, r.degree, f"{r.survival:.2f}"])
    report("e15_d1_answer", table)
    for r in rows:
        assert r.survival >= 0.75
        assert r.degree <= 8
