"""E19 — lifetime survival curves and the incremental-repair speedup.

Two claims of the ISSUE 3 lifetime subsystem, measured and committed to
``BENCH_lifetime.json`` at the repo root:

* **Survival curves** — fraction of machines still alive after ``g``
  fault arrivals, per timeline kind (uniform, uniform+repair, burst),
  from one ``ExperimentSpec`` per kind on the batched kernel where
  supported.  Repair at rate ``rho`` visibly shifts the curve right —
  the arrival-with-repair regime one-shot trials cannot express.
* **Incremental repair speedup** — ``OnlineRecovery(incremental=True)``
  vs the full-recompute reference on a d=2 lifetime run at the bench_e17
  problem size (b=4, N=12288), identical lifetimes asserted.  Acceptance:
  >= 5x.

Runs two ways::

    pytest benchmarks/bench_e19_lifetime.py     # table + both artifacts
    python benchmarks/bench_e19_lifetime.py     # regenerate BENCH_lifetime.json
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
LIFETIME_JSON = ROOT / "BENCH_lifetime.json"

#: Survival-curve configuration (small instance: 40 trials stay cheap).
CURVE_BN = dict(d=2, b=3, s=1, t=2)
CURVE_TRIALS = 40
CURVE_GRID_POINTS = (0, 2, 4, 6, 8, 10, 12, 15, 20, 30)

#: Incremental-speedup configuration: the bench_e17 problem size (d=2, b=4).
SPEED_BN = dict(d=2, b=4, s=1, t=2)
SPEED_TRIALS = 3
SPEEDUP_FLOOR = 5.0


def measure_survival_curves() -> dict:
    from repro.api import ExperimentRunner, ExperimentSpec, LifetimeSpec

    grid = (
        LifetimeSpec(),
        LifetimeSpec(timeline="uniform", repair_rate=0.05, max_steps=400),
        LifetimeSpec(timeline="burst", burst=3, max_steps=200),
    )
    spec = ExperimentSpec(
        construction="bn", params=CURVE_BN, grid=grid, trials=CURVE_TRIALS,
        name="e19-survival",
    )
    result = ExperimentRunner(batch=True).run(spec)
    curves = {}
    for pt in result.points:
        life = pt.result
        curves[pt.fault_spec.label()] = {
            "trials": life.trials,
            "median_lifetime": life.median_lifetime,
            "arrivals_grid": list(CURVE_GRID_POINTS),
            "surviving_fraction": [
                round(x, 4) for x in life.survival_curve(CURVE_GRID_POINTS)
            ],
            "recompute_fraction": round(life.repair_fraction(), 4),
        }
    return curves


def measure_incremental_speedup() -> dict:
    from repro.core.bn import BTorus
    from repro.core.online import fault_lifetime
    from repro.core.params import BnParams

    bt = BTorus(BnParams(**SPEED_BN))
    seeds = list(range(SPEED_TRIALS))
    fault_lifetime(bt, 0, max_faults=5)  # warm caches either way

    t0 = time.perf_counter()
    inc = [fault_lifetime(bt, s, incremental=True) for s in seeds]
    inc_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    full = [fault_lifetime(bt, s, incremental=False) for s in seeds]
    full_s = time.perf_counter() - t0

    return {
        "params": SPEED_BN,
        "num_nodes": bt.params.num_nodes,
        "trials": SPEED_TRIALS,
        "lifetimes": inc,
        "lifetimes_identical": inc == full,
        "incremental_s": round(inc_s, 4),
        "full_recompute_s": round(full_s, 4),
        "speedup": round(full_s / inc_s, 2) if inc_s > 0 else float("inf"),
        "acceptance_floor": SPEEDUP_FLOOR,
    }


def measure_all() -> dict:
    return {
        "benchmark": (
            "lifetime subsystem: survival curves per timeline kind and "
            "incremental repair vs full recompute (repro.core.online)"
        ),
        "note": (
            "incremental repair recomputes placement from the maintained "
            "row profile and rebuilds only affected torus rows; the full "
            "mode reruns place+extract+verify per unmasked arrival.  Both "
            "produce identical lifetimes (lifetimes_identical); the >=5x "
            "acceptance is on the d=2 bench_e17 problem size"
        ),
        "survival_curves": measure_survival_curves(),
        "incremental_repair": measure_incremental_speedup(),
    }


# -- pytest integration ------------------------------------------------------


def test_e19_lifetime_curves_and_incremental_speedup(benchmark, report):
    from conftest import run_once

    from repro.util.tables import Table

    def compute():
        data = measure_all()
        LIFETIME_JSON.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
        return data

    data = run_once(benchmark, compute)
    table = Table(
        ["timeline", "median life"] + [f">={g}" for g in CURVE_GRID_POINTS],
        title=f"E19: surviving fraction after g arrivals ({CURVE_TRIALS} trials)",
    )
    for label, c in data["survival_curves"].items():
        table.add_row(
            [label, f"{c['median_lifetime']:g}"]
            + [f"{x:.2f}" for x in c["surviving_fraction"]]
        )
    report("e19_lifetime_curve", table)

    inc = data["incremental_repair"]
    assert inc["lifetimes_identical"], "incremental diverged from full recompute"
    assert inc["speedup"] >= SPEEDUP_FLOOR, (
        f"incremental repair speedup {inc['speedup']}x < {SPEEDUP_FLOOR}x"
    )
    # Repair visibly extends life: the rho > 0 curve dominates at the tail.
    plain = data["survival_curves"]["life/uniform"]["surviving_fraction"]
    repaired = next(
        c["surviving_fraction"]
        for label, c in data["survival_curves"].items()
        if "rho" in label
    )
    assert sum(repaired) >= sum(plain)


# -- CLI ---------------------------------------------------------------------


def main() -> int:
    data = measure_all()
    print(json.dumps(data, indent=2, sort_keys=True))
    LIFETIME_JSON.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    print(f"wrote {LIFETIME_JSON}")
    inc = data["incremental_repair"]
    if not inc["lifetimes_identical"]:
        print("FAIL: incremental lifetimes differ from full recompute", file=sys.stderr)
        return 1
    if inc["speedup"] < SPEEDUP_FLOOR:
        print(
            f"FAIL: incremental speedup {inc['speedup']}x < {SPEEDUP_FLOOR}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
