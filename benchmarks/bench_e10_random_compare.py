"""E10 — the headline comparison: degree O(log log N) vs O(log N).

FKP-style replication needs per-cluster redundancy r ~ log(n) to survive
constant p (its survival is exactly (1 - p^r)^{n^2}); A^2's supernode size
h depends only on the *defect rate and reliability target*, not on n — so
its degree curve is flat where replication's grows logarithmically.  Both
are sized here for the same target failure probability, then measured via
two :class:`ExperimentSpec`\\ s against the ``an`` and ``replication``
registry entries.
"""

from __future__ import annotations

from conftest import run_once

from repro.api import ExperimentRunner, ExperimentSpec
from repro.baselines.replication import ReplicatedTorus
from repro.core.an import an_params_for_reliability
from repro.core.params import BnParams
from repro.util.tables import Table

P = 0.25
TARGET = 1e-3  # whole-system failure target used to size both designs


def test_e10_degree_scaling_table(benchmark, report):
    """Sizing-only sweep across n: replication degree grows, A's h is flat."""

    def compute():
        rows = []
        for t, k_sub in [(2, 2), (4, 2), (8, 2)]:
            base = BnParams(d=2, b=3, s=1, t=t)
            ap = an_params_for_reliability(base, k_sub=k_sub, p=P, q=0.0)
            n = ap.n
            rt = ReplicatedTorus(n, 2)
            r_needed = rt.replication_for_target(P, TARGET)
            repl_degree = (r_needed - 1) + 4 * r_needed
            rows.append([n, ap.h, ap.degree, r_needed, repl_degree])
        return rows

    rows = run_once(benchmark, compute)
    table = Table(
        ["n", "A: supernode h", "A degree", "replication r", "replication degree"],
        title=f"E10: degree sizing at p = {P}, target failure {TARGET}",
    )
    for r in rows:
        table.add_row(r)
    report("e10_degree_scaling", table)

    # A's supernode size (degree driver) is flat in n...
    hs = [r[1] for r in rows]
    assert max(hs) - min(hs) <= 2
    # ...replication's r strictly grows with n (log N behaviour).
    rs = [r[3] for r in rows]
    assert rs[0] < rs[-1]


def test_e10_measured_survival(benchmark, report):
    """Both designs, sized for the same target, measured at p = P."""
    TRIALS = 8

    def compute():
        base = BnParams(d=2, b=3, s=1, t=2)
        ap = an_params_for_reliability(base, k_sub=2, p=P, q=0.0)
        r_needed = ReplicatedTorus(ap.n, 2).replication_for_target(P, TARGET)

        runner = ExperimentRunner()
        a_spec = ExperimentSpec.from_grid(
            "an",
            {"d": base.d, "b": base.b, "s": base.s, "t": base.t,
             "k_sub": 2, "h": ap.h},
            p_values=[P], trials=TRIALS, name="e10 an",
        )
        r_spec = ExperimentSpec.from_grid(
            "replication",
            {"n": ap.n, "d": 2, "replication": r_needed},
            p_values=[P], trials=TRIALS, name="e10 replication",
        )
        a_res = runner.run(a_spec).points[0].result
        r_res = runner.run(r_spec).points[0].result
        rt = ReplicatedTorus(ap.n, 2, replication=r_needed)
        return ap, a_res, rt, r_res

    ap, a_res, rt, r_res = run_once(benchmark, compute)
    table = Table(
        ["design", "n", "nodes", "degree", "survival"],
        title=f"E10b: measured survival at p = {P} (8 trials)",
    )
    table.add_row(["A^2 (Thm 1)", ap.n, ap.num_nodes, ap.degree, f"{a_res.success_rate:.2f}"])
    table.add_row(["replication", ap.n, rt.num_nodes, rt.degree, f"{r_res.success_rate:.2f}"])
    report("e10_measured", table)
    assert a_res.success_rate >= 0.85
    assert r_res.success_rate >= 0.85
