"""E2 — Theorem 2 claim (3): survival w.h.p. at p = b^{-3d}.

The paper proves survival probability 1 - n^{-Omega(log log n)} at node
failure rate log^{-3d} n.  The executable shape: at ``p = b^{-3d}``,
verified recovery succeeds in nearly all trials, and the rate *improves*
as b (hence n) grows — despite the absolute fault count growing.

Each case is a declarative :class:`ExperimentSpec` against the ``bn``
registry entry, executed on the vectorized batch backend
(``ExperimentRunner(batch=True)``); the batch path reproduces the
historical driver loop's outcomes exactly (same seeds, same RNG keying,
byte-identical JSON — the contract of repro.fastpath).
"""

from __future__ import annotations

from conftest import run_once

from repro.api import ExperimentRunner, ExperimentSpec
from repro.core.params import BnParams
from repro.util.tables import Table

CASES = [
    ("d=2 b=3", BnParams(d=2, b=3, s=1, t=2), 40),
    ("d=2 b=4", BnParams(d=2, b=4, s=1, t=2), 30),
    ("d=2 b=5", BnParams(d=2, b=5, s=2, t=2), 15),
    ("d=3 b=3", BnParams(d=3, b=3, s=1, t=2), 10),
]


def spec_for(label: str, params: BnParams, trials: int) -> ExperimentSpec:
    return ExperimentSpec.from_grid(
        "bn",
        {"d": params.d, "b": params.b, "s": params.s, "t": params.t},
        p_values=[params.paper_fault_probability],
        trials=trials,
        name=f"e2 {label}",
    )


def test_e2_survival_at_paper_rate(benchmark, report):
    runner = ExperimentRunner(batch=True)

    def compute():
        rows = []
        for label, params, trials in CASES:
            p = params.paper_fault_probability
            res = runner.run(spec_for(label, params, trials)).points[0].result
            lo, hi = res.ci
            rows.append(
                [label, params.n, params.num_nodes, f"{p:.2e}", f"{res.mean_faults:.1f}",
                 trials, f"{res.success_rate:.3f}", f"[{lo:.2f},{hi:.2f}]"]
            )
        return rows

    rows = run_once(benchmark, compute)
    table = Table(
        ["case", "n", "nodes", "p=b^-3d", "mean faults", "trials", "survival", "95% CI"],
        title="E2: Theorem 2(3) — verified survival at the paper's fault rate",
    )
    for r in rows:
        table.add_row(r)
    report("e2_bn_survival", table)

    # Shape claims: high survival everywhere; non-decreasing from the
    # smallest (most fragile) instance to the larger ones.
    rates = [float(r[6]) for r in rows]
    assert all(rate >= 0.85 for rate in rates)
    assert rates[1] >= rates[0] - 0.05  # growing b does not hurt
