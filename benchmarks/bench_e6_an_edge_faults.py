"""E6 — Theorem 1 with edge faults: the q < (1-p-1/c)^2/64 regime.

Half-edge machinery end to end: good nodes must discount half-edge-heavy
nodes, the greedy must dodge faulty edges, and the verified embedding must
avoid them.  Also checks the feasibility boundary: q outside inequality
(1) is rejected.
"""

from __future__ import annotations

import pytest
from conftest import run_once

from repro.analysis.montecarlo import MonteCarlo
from repro.core.an import ATorus, an_params_for_reliability
from repro.core.bn import TrialOutcome
from repro.core.params import BnParams
from repro.errors import ReconstructionError
from repro.util.tables import Table

BASE = BnParams(d=2, b=3, s=1, t=2)
TRIALS = 4
P = 0.15


def test_e6_edge_fault_sweep(benchmark, report):
    qs = [0.0, 5e-4, 2e-3]

    def compute():
        rows = []
        for q in qs:
            params = an_params_for_reliability(BASE, k_sub=2, p=P, q=q)
            at = ATorus(params)

            def trial(seed: int, q=q, at=at) -> TrialOutcome:
                try:
                    at.recover(at.sample_faults(P, q, seed))
                    return TrialOutcome(success=True, category="ok")
                except ReconstructionError as exc:
                    return TrialOutcome(success=False, category=exc.category)

            res = MonteCarlo(trial).run(TRIALS)
            rows.append(
                [q, params.h, params.degree, f"{params.c_effective:.1f}",
                 f"{res.success_rate:.2f}"]
            )
        return rows

    rows = run_once(benchmark, compute)
    table = Table(
        ["q", "h", "degree", "c", "survival"],
        title=f"E6: A^2 with edge faults (p={P}, {TRIALS} trials/point)",
    )
    for r in rows:
        table.add_row(r)
    report("e6_an_edge_faults", table)

    assert all(float(r[4]) >= 0.75 for r in rows)
    # larger q needs larger supernodes (8 sqrt(q) h threshold effect)
    assert rows[-1][1] >= rows[0][1]


def test_e6_infeasible_q_rejected(benchmark):
    def check():
        with pytest.raises(ValueError, match="inequality"):
            an_params_for_reliability(BASE, k_sub=2, p=0.2, q=0.011)
        return True

    assert run_once(benchmark, check)
