"""E6 — Theorem 1 with edge faults: the q < (1-p-1/c)^2/64 regime.

Half-edge machinery end to end: good nodes must discount half-edge-heavy
nodes, the greedy must dodge faulty edges, and the verified embedding must
avoid them.  Also checks the feasibility boundary: q outside inequality
(1) is rejected.

Each q is one :class:`ExperimentSpec` against ``an`` with the edge-fault
rate carried in the :class:`FaultSpec` grid point.
"""

from __future__ import annotations

import pytest
from conftest import run_once

from repro.api import ExperimentRunner, ExperimentSpec
from repro.core.an import an_params_for_reliability
from repro.core.params import BnParams
from repro.util.tables import Table

BASE = BnParams(d=2, b=3, s=1, t=2)
TRIALS = 4
P = 0.15


def test_e6_edge_fault_sweep(benchmark, report):
    qs = [0.0, 5e-4, 2e-3]
    runner = ExperimentRunner()

    def compute():
        rows = []
        for q in qs:
            params = an_params_for_reliability(BASE, k_sub=2, p=P, q=q)
            spec = ExperimentSpec.from_grid(
                "an",
                {"d": BASE.d, "b": BASE.b, "s": BASE.s, "t": BASE.t,
                 "k_sub": 2, "h": params.h},
                p_values=[P],
                q=q,
                trials=TRIALS,
                name=f"e6 q={q}",
            )
            res = runner.run(spec).points[0].result
            rows.append(
                [q, params.h, params.degree, f"{params.c_effective:.1f}",
                 f"{res.success_rate:.2f}"]
            )
        return rows

    rows = run_once(benchmark, compute)
    table = Table(
        ["q", "h", "degree", "c", "survival"],
        title=f"E6: A^2 with edge faults (p={P}, {TRIALS} trials/point)",
    )
    for r in rows:
        table.add_row(r)
    report("e6_an_edge_faults", table)

    assert all(float(r[4]) >= 0.75 for r in rows)
    # larger q needs larger supernodes (8 sqrt(q) h threshold effect)
    assert rows[-1][1] >= rows[0][1]


def test_e6_infeasible_q_rejected(benchmark):
    def check():
        with pytest.raises(ValueError, match="inequality"):
            an_params_for_reliability(BASE, k_sub=2, p=0.2, q=0.011)
        return True

    assert run_once(benchmark, check)
