"""E5 — Theorem 1: A^2_n survives constant node-failure probability.

Claims verified: node count = c n^2 (exact), degree O(log log n) in the
sense that the supernode size h — the degree driver — does not grow with n
(it depends only on the target reliability), and verified survival at
p in {0.1, 0.2, 0.3}.

Each p is one :class:`ExperimentSpec` against the ``an`` registry entry
(the supernode size is solved by ``an_params_for_reliability`` and passed
as an explicit factory parameter, keeping the spec fully declarative),
executed on the batch backend — ``q == 0`` points classify entirely via
the vectorized good-supernode + straight-cover reductions.
"""

from __future__ import annotations

from conftest import run_once

from repro.api import ExperimentRunner, ExperimentSpec
from repro.core.an import an_params_for_reliability
from repro.core.params import BnParams
from repro.util.tables import Table

BASE = BnParams(d=2, b=3, s=1, t=2)
TRIALS = 10


def test_e5_an_survival_table(benchmark, report):
    runner = ExperimentRunner(batch=True)

    def compute():
        rows = []
        for p in (0.1, 0.2, 0.3):
            params = an_params_for_reliability(BASE, k_sub=2, p=p, q=0.0)
            spec = ExperimentSpec.from_grid(
                "an",
                {"d": BASE.d, "b": BASE.b, "s": BASE.s, "t": BASE.t,
                 "k_sub": 2, "h": params.h},
                p_values=[p],
                trials=TRIALS,
                name=f"e5 p={p}",
            )
            res = runner.run(spec).points[0].result
            lo, hi = res.ci
            rows.append(
                [p, params.n, params.h, params.num_nodes,
                 f"{params.c_effective:.2f}", params.degree,
                 f"{res.success_rate:.2f}", f"[{lo:.2f},{hi:.2f}]"]
            )
        return rows

    rows = run_once(benchmark, compute)
    table = Table(
        ["p", "n", "h", "nodes", "c = nodes/n^2", "degree", "survival", "95% CI"],
        title=f"E5: Theorem 1 — A^2 survival at constant p ({TRIALS} trials)",
    )
    for r in rows:
        table.add_row(r)
    report("e5_an_survival", table)

    for r in rows:
        assert float(r[6]) >= 0.9  # whp survival at constant p
    # c stays a constant multiple (not growing with n — checked at one n,
    # h-vs-n flatness is E10's job); sanity: c < 10 for p <= 0.3
    assert all(float(r[4]) < 10 for r in rows)
