"""E22 — the cross-model study: every construction under every fault model.

Runs all six registered constructions through the standard
``ExperimentRunner`` grids under the registered fault models (ISSUE 9):

* **survival** — one-shot ``FaultSpec(fault_model=...)`` points for each
  crash model (bernoulli / halfedge / neighbor / component) on every
  construction, charting how recovery degrades when faults are
  correlated (neighborhoods, component slabs) instead of independent;
* **lifetime** — ``LifetimeSpec(fault_model=...)`` arrival streams with
  repair on ``bn`` (the incremental-repair pillar) per crash model;
* **byzantine traffic** — ``TrafficSpec(fault_model=...)`` workloads on
  the ``bn`` and ``dn`` guests under Byzantine node models (uniform and
  skewed action mixes), recording the delivery-integrity split.

Runs two ways:

* ``pytest benchmarks/bench_e22_faultmodels.py`` — bench-suite
  integration (full matrix, table artifact, regenerates
  ``BENCH_faultmodels.json`` at the repo root);
* ``python benchmarks/bench_e22_faultmodels.py [--quick] [--check PATH]``
  — the CI cross-model gate.  Unlike the wall-clock gates (e18/e21),
  every number here is a *deterministic* function of spec and seed, so
  ``--check`` compares the quick tier against the committed baseline
  **exactly** — any drift in a sampler, an engine, a kernel or the RNG
  key discipline fails CI with a field-level diff, on any machine.

The gate also enforces two model-level invariants on every Byzantine
point: message conservation
(``delivered + dropped + timed_out + undeliverable == offered``) and a
nonzero perturbation count (the model demonstrably engaged).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
FAULTMODELS_JSON = ROOT / "BENCH_faultmodels.json"

#: Crash-model grid every construction runs under.  Rates are gentle so
#: small comparator hosts keep a mix of successes and failures; the gate
#: compares outcomes exactly, so "interesting" matters more than "hard".
CRASH_MODELS = [
    {"name": "bernoulli", "p": 0.004},
    {"name": "halfedge", "q": 0.004},
    {"name": "neighbor", "p": 0.002},
    {"name": "component", "rate": 0.005},
]

#: Byzantine traffic points (the spec label only carries the model name,
#: so each point gets its own row key describing the action mix).
BYZANTINE_MODELS = [
    ("even-mix", {"name": "byzantine", "rate": 0.08}),
    ("drop-heavy",
     {"name": "byzantine", "rate": 0.08, "misroute": 0.5, "drop": 2.0, "corrupt": 0.5}),
]

#: Constructions in the study — the canonical small-but-real pool the
#: conformance suite uses (alon_chung has no torus guest, so it appears
#: in the survival matrix only, exactly like everywhere else).
def _constructions():
    from repro.testkit.cases import SMALL_CONSTRUCTIONS

    return SMALL_CONSTRUCTIONS


def measure_survival(trials: int, constructions=None) -> dict:
    """One-shot recovery under every crash model, per construction."""
    from repro.api import ExperimentRunner, ExperimentSpec, FaultSpec

    out: dict = {}
    for key, params in constructions or _constructions():
        spec = ExperimentSpec(
            construction=key,
            params=params,
            grid=tuple(FaultSpec(fault_model=dict(m)) for m in CRASH_MODELS),
            trials=trials,
            name=f"e22-{key}",
        )
        result = ExperimentRunner().run(spec)
        rows = {}
        for pt in result.points:
            rows[pt.fault_spec.label()] = {
                "trials": pt.result.trials,
                "successes": pt.result.successes,
                "mean_faults": round(pt.result.mean_faults, 6),
            }
        out[key] = rows
    return out


def measure_lifetime(trials: int) -> dict:
    """Model-driven arrival streams with repair on bn, per crash model."""
    from repro.api import ExperimentRunner, ExperimentSpec, LifetimeSpec

    grid = tuple(
        LifetimeSpec(fault_model=dict(m), repair_rate=0.2, max_steps=40)
        for m in CRASH_MODELS
    )
    spec = ExperimentSpec(
        construction="bn",
        params=dict(d=2, b=3, s=1, t=2),
        grid=grid,
        trials=trials,
        name="e22-lifetime",
    )
    result = ExperimentRunner().run(spec)
    out = {}
    for pt in result.points:
        lifetimes = sorted(pt.result.lifetimes)
        out[pt.fault_spec.label()] = {
            "trials": pt.result.trials,
            "min_lifetime": lifetimes[0],
            "median_lifetime": lifetimes[len(lifetimes) // 2],
            "max_lifetime": lifetimes[-1],
            "total_arrivals": sum(lifetimes),
        }
    return out


def measure_byzantine(trials: int, messages: int) -> dict:
    """Byzantine traffic on the bn and dn guests; conservation asserted."""
    from repro.api import ExperimentRunner, ExperimentSpec, TrafficSpec

    out: dict = {}
    for key, params in (
        ("bn", dict(d=2, b=3, s=1, t=2)),
        ("dn", dict(d=2, n=70, b=2)),
    ):
        grid = tuple(
            TrafficSpec(pattern="uniform", messages=messages, fault_model=dict(m))
            for _, m in BYZANTINE_MODELS
        )
        spec = ExperimentSpec(
            construction=key,
            params=params,
            grid=grid,
            trials=trials,
            name=f"e22-byz-{key}",
        )
        result = ExperimentRunner().run(spec)
        rows = {}
        for (mix_tag, _), pt in zip(BYZANTINE_MODELS, result.points):
            label = f"{pt.fault_spec.label()} [{mix_tag}]"
            totals = {
                f: sum(getattr(o, f) for o in pt.result.outcomes)
                for f in ("offered", "delivered", "timed_out", "undeliverable",
                          "dropped", "corrupted", "misrouted")
            }
            conserved = (
                totals["delivered"] + totals["dropped"] + totals["timed_out"]
                + totals["undeliverable"] == totals["offered"]
            )
            perturbed = totals["dropped"] + totals["corrupted"] + totals["misrouted"]
            assert conserved, f"{key} {label}: message counts leak"
            assert perturbed > 0, f"{key} {label}: model never engaged"
            rows[label] = {"trials": pt.result.trials, **totals}
        out[key] = rows
    return out


#: Quick-tier sizing: the whole tier is a few seconds, and because its
#: numbers are deterministic the committed baseline is exact on every
#: machine.
QUICK_SURVIVAL_TRIALS = 8
QUICK_LIFETIME_TRIALS = 8
QUICK_BYZ_TRIALS = 4
QUICK_MESSAGES = 96

FULL_SURVIVAL_TRIALS = 24
FULL_LIFETIME_TRIALS = 16
FULL_BYZ_TRIALS = 8
FULL_MESSAGES = 160


def measure_quick() -> dict:
    return {
        "survival": measure_survival(QUICK_SURVIVAL_TRIALS),
        "lifetime": measure_lifetime(QUICK_LIFETIME_TRIALS),
        "byzantine_traffic": measure_byzantine(QUICK_BYZ_TRIALS, QUICK_MESSAGES),
    }


def measure_full() -> dict:
    return {
        "benchmark": (
            "cross-model study: all six constructions through the standard "
            "runner grids under every registered fault model (crash models "
            "in survival + lifetime, Byzantine models in traffic)"
        ),
        "note": (
            "every number is a deterministic function of spec and seed, so "
            "the CI gate (--quick --check) compares the quick tier against "
            "this baseline EXACTLY — outcome drift in a sampler, engine, "
            "kernel or RNG key fails the build on any machine.  Full-tier "
            "sections use more trials for the chart; the invariants "
            "(Byzantine message conservation, nonzero perturbations) are "
            "asserted in both tiers."
        ),
        "survival": measure_survival(FULL_SURVIVAL_TRIALS),
        "lifetime": measure_lifetime(FULL_LIFETIME_TRIALS),
        "byzantine_traffic": measure_byzantine(FULL_BYZ_TRIALS, FULL_MESSAGES),
        "quick": measure_quick(),
    }


def _diff(path: str, a, b, out: list) -> None:
    """Recursive exact diff with JSON-path labels (baseline vs measured)."""
    if isinstance(a, dict) and isinstance(b, dict):
        for key in sorted(set(a) | set(b)):
            if key not in a:
                out.append(f"{path}.{key}: missing from baseline")
            elif key not in b:
                out.append(f"{path}.{key}: missing from measurement")
            else:
                _diff(f"{path}.{key}", a[key], b[key], out)
    elif a != b:
        out.append(f"{path}: baseline {a!r} != measured {b!r}")


# -- pytest integration ------------------------------------------------------


def test_e22_faultmodel_matrix(benchmark, report):
    from conftest import run_once

    from repro.util.tables import Table

    def compute():
        data = measure_full()
        FAULTMODELS_JSON.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
        return data

    data = run_once(benchmark, compute)

    table = Table(
        ["construction", "model point", "ok/trials", "mean faults"],
        title="E22: survival under the crash-model grid",
    )
    for key, rows in data["survival"].items():
        for label, row in rows.items():
            table.add_row(
                [key, label, f"{row['successes']}/{row['trials']}",
                 f"{row['mean_faults']:g}"]
            )
    report("e22_faultmodels", table)

    # Independent draws recover at independent rates: the correlated
    # models must not silently degenerate to the Bernoulli column.
    bn = data["survival"]["bn"]
    assert len(bn) == len(CRASH_MODELS)
    for rows in data["survival"].values():
        for row in rows.values():
            assert 0 <= row["successes"] <= row["trials"]


# -- CLI / CI gate -----------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="measure only the deterministic quick tier "
                         "(the CI cross-model gate)")
    ap.add_argument("--check", metavar="BASELINE",
                    help="compare against a committed BENCH_faultmodels.json; "
                         "exit 1 on ANY outcome drift (exact, machine-portable)")
    ap.add_argument("--out", metavar="PATH",
                    help="write measurement JSON here (full mode defaults to "
                         "BENCH_faultmodels.json)")
    args = ap.parse_args(argv)

    data = {"quick": measure_quick()} if args.quick else measure_full()
    print(json.dumps(data, indent=2, sort_keys=True))

    if args.out:
        Path(args.out).write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    elif not args.quick:
        FAULTMODELS_JSON.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
        print(f"wrote {FAULTMODELS_JSON}")

    if args.check:
        baselines = json.loads(Path(args.check).read_text())
        problems: list[str] = []
        _diff("quick", baselines["quick"], data["quick"], problems)
        if problems:
            for line in problems:
                print(f"cross-model gate: {line}", file=sys.stderr)
            print(
                "FAIL: fault-model outcomes drifted from the committed "
                "baseline (deterministic — this is a real behaviour change)",
                file=sys.stderr,
            )
            return 1
        print("cross-model gate: quick tier matches the baseline exactly")
    return 0


if __name__ == "__main__":
    sys.exit(main())
