"""E1 — Theorem 2 claims (1) and (2): node count and degree of B^d_n.

Paper: |B^d_n| <= (1+eps) n^d and degree exactly 6d-2.  We verify both
*exactly* (not asymptotically) across dimensions and parameter choices,
and time the construction.
"""

from __future__ import annotations

import pytest
from conftest import run_once

from repro.core.bn_graph import BnGraph
from repro.core.params import BnParams
from repro.util.tables import Table

CASES = [
    BnParams(d=2, b=3, s=1, t=2),
    BnParams(d=2, b=4, s=1, t=2),
    BnParams(d=2, b=5, s=1, t=2),
    BnParams(d=2, b=5, s=2, t=2),
    BnParams(d=2, b=7, s=3, t=2),
    BnParams(d=3, b=3, s=1, t=2),
]


def test_e1_size_and_degree_table(benchmark, report):
    def compute():
        rows = []
        for p in CASES:
            g = BnGraph(p).graph()
            degs = g.degrees()
            rows.append(
                [
                    f"d={p.d} b={p.b} s={p.s} t={p.t}",
                    p.n,
                    g.num_nodes,
                    f"{1 + p.eps_redundancy:.3f}",
                    f"{g.num_nodes / p.n ** p.d:.3f}",
                    6 * p.d - 2,
                    int(degs.min()),
                    int(degs.max()),
                ]
            )
        return rows

    rows = run_once(benchmark, compute)
    table = Table(
        ["params", "n", "nodes", "claimed (1+eps')", "measured ratio", "claimed deg", "min deg", "max deg"],
        title="E1: Theorem 2(1,2) — node count and degree (exact)",
    )
    for r in rows:
        table.add_row(r)
    report("e1_bn_size_degree", table)

    for r, p in zip(rows, CASES):
        # count claim, exactly: |B| = (1 + s/(b-s)) n^d = m n^{d-1}
        assert r[2] * (p.b - p.s) == p.b * p.n ** p.d
        assert r[5] == r[6] == r[7]  # degree exactly 6d-2, uniform


@pytest.mark.parametrize("p", [CASES[0], CASES[1]], ids=["b3", "b4"])
def test_e1_construction_speed(benchmark, p):
    benchmark(lambda: BnGraph(p).edges())
