"""E16 — structural properties of the hosts (beyond the paper's degree).

The jump-edge hierarchies are not free decorations: they also shorten
paths.  Table: sampled diameter and mean distance of B/D hosts vs the
plain torus on the same node set, plus mesh-restriction verification (the
title's "and hence the mesh") as a one-shot check.
"""

from __future__ import annotations

import numpy as np
from conftest import run_once

from repro.analysis.graphprops import mean_distance, sampled_diameter
from repro.core.bn import BTorus
from repro.core.bn_graph import BnGraph
from repro.core.dn import DTorus
from repro.core.mesh import verify_recovered_mesh
from repro.core.params import BnParams, DnParams
from repro.topology.torus import torus_graph
from repro.util.rng import spawn_rng
from repro.util.tables import Table

BN = BnParams(d=2, b=3, s=1, t=2)
DN = DnParams(d=2, n=70, b=2)
SAMPLES = 5


def test_e16_distance_table(benchmark, report):
    def compute():
        rows = []
        bn = BnGraph(BN)
        host = bn.graph()
        plain = torus_graph(BN.shape)
        rows.append(
            ["B^2 host", host.num_nodes,
             sampled_diameter(host, SAMPLES, spawn_rng(0)),
             f"{mean_distance(host, SAMPLES, spawn_rng(0)):.2f}"]
        )
        rows.append(
            ["plain torus (same shape)", plain.num_nodes,
             sampled_diameter(plain, SAMPLES, spawn_rng(0)),
             f"{mean_distance(plain, SAMPLES, spawn_rng(0)):.2f}"]
        )
        dt = DTorus(DN)
        dg = dt.graph()
        dplain = torus_graph(DN.shape)
        rows.append(
            ["D^2 host", dg.num_nodes,
             sampled_diameter(dg, SAMPLES, spawn_rng(1)),
             f"{mean_distance(dg, SAMPLES, spawn_rng(1)):.2f}"]
        )
        rows.append(
            ["plain torus (same shape)", dplain.num_nodes,
             sampled_diameter(dplain, SAMPLES, spawn_rng(1)),
             f"{mean_distance(dplain, SAMPLES, spawn_rng(1)):.2f}"]
        )
        return rows

    rows = run_once(benchmark, compute)
    table = Table(
        ["graph", "nodes", "diameter (sampled)", "mean distance"],
        title="E16: jump edges shorten paths (host vs plain torus)",
    )
    for r in rows:
        table.add_row(r)
    report("e16_host_properties", table)
    assert rows[0][2] < rows[1][2]  # B host beats its plain torus
    assert rows[2][2] <= rows[3][2]  # D host no worse


def test_e16_mesh_restriction(benchmark, report):
    def compute():
        bt = BTorus(BN)
        faults = np.zeros(BN.shape, dtype=bool)
        faults[20, 20] = True
        rec = bt.recover(faults, strategy="paper")
        full = verify_recovered_mesh(rec, faults, bt.bn)
        sub = verify_recovered_mesh(rec, faults, bt.bn, corner=(30, 30), sizes=(10, 10))
        return full, sub

    full, sub = run_once(benchmark, compute)
    table = Table(
        ["restriction", "nodes", "edges checked"],
        title="E16b: 'and hence the mesh' — verified mesh restrictions",
    )
    table.add_row(["full n x n mesh", full["nodes"], full["edges_checked"]])
    table.add_row(["10 x 10 submesh (wrapping)", sub["nodes"], sub["edges_checked"]])
    report("e16_mesh", table)
    assert full["nodes"] == BN.n ** 2
    assert sub["nodes"] == 100
