"""E4 — Lemma 4: healthiness rates, per-condition attribution, and the
paper's own union bound as a prediction.

Measured columns: fraction of trials where each condition holds, the
strict healthiness (Lemma 4 statement) and the sufficient variant (what
Lemma 5 consumes), plus verified recovery.  Predicted column: our
executable version of the paper's union bound (upper bound on failure).
"""

from __future__ import annotations

import numpy as np
from conftest import run_once

from repro.analysis.chernoff import predict_healthiness
from repro.core.bn import BTorus
from repro.core.params import BnParams
from repro.util.tables import Table

PARAMS = BnParams(d=2, b=4, s=1, t=2)
TRIALS = 20


def test_e4_healthiness_attribution(benchmark, report):
    p0 = PARAMS.paper_fault_probability
    ps = [p0 / 4, p0, 8 * p0, 32 * p0]
    bt = BTorus(PARAMS)

    def compute():
        rows = []
        for p in ps:
            c1 = c2 = c3 = healthy = sufficient = ok = 0
            for seed in range(TRIALS):
                out = bt.trial(p, seed, check_health=True)
                h = out.health
                c1 += h.cond1_ok
                c2 += h.cond2_ok
                c3 += h.cond3_ok
                healthy += h.healthy
                sufficient += h.sufficient
                ok += out.success
            pred = predict_healthiness(PARAMS, p)
            rows.append(
                [f"{p:.1e}", c1 / TRIALS, c2 / TRIALS, c3 / TRIALS,
                 healthy / TRIALS, sufficient / TRIALS, ok / TRIALS,
                 f"<={pred.total_bound:.2g}"]
            )
        return rows

    rows = run_once(benchmark, compute)
    table = Table(
        ["p", "cond1", "cond2", "cond3", "healthy", "sufficient", "recovered",
         "predicted unhealthy"],
        title=f"E4: Lemma 4 healthiness attribution (B^2_{PARAMS.n}, {TRIALS} trials)",
    )
    for r in rows:
        table.add_row(r)
    report("e4_healthiness", table)

    for r in rows:
        # Lemma 5's implication, empirically: recovery rate >= sufficient rate.
        assert float(r[6]) >= float(r[5]) - 1e-9
        # union bound actually bounds measured unhealthiness (with MC slack)
        bound = float(r[7].lstrip("<="))
        assert (1.0 - float(r[4])) <= min(1.0, bound + 0.25)
    # condition 2 (brick fault count, s=1) is the first to break as p grows
    assert float(rows[-1][2]) <= float(rows[-1][1])
