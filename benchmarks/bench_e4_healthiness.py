"""E4 — Lemma 4: healthiness rates, per-condition attribution, and the
paper's own union bound as a prediction.

Measured columns: fraction of trials where each condition holds, the
strict healthiness (Lemma 4 statement) and the sufficient variant (what
Lemma 5 consumes), plus verified recovery.  Predicted column: our
executable version of the paper's union bound (upper bound on failure).

All trials of a fault point run through the batched backend
(``run_batch`` with ``check_health=True``): fault stacks are sampled as
one ``(trials, *shape)`` array and conditions 1-3 are evaluated as array
reductions — the per-trial reports are identical to the scalar checker's
(tests/test_fastpath.py), so the table is unchanged, only faster.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis.chernoff import predict_healthiness
from repro.api import FaultSpec
from repro.api.registry import get
from repro.core.params import BnParams
from repro.util.tables import Table

PARAMS = BnParams(d=2, b=4, s=1, t=2)
TRIALS = 20


def test_e4_healthiness_attribution(benchmark, report):
    p0 = PARAMS.paper_fault_probability
    ps = [p0 / 4, p0, 8 * p0, 32 * p0]
    bn = get("bn", d=PARAMS.d, b=PARAMS.b, s=PARAMS.s, t=PARAMS.t, check_health=True)

    def compute():
        rows = []
        for p in ps:
            outs = bn.run_batch(FaultSpec(p=p), list(range(TRIALS)))
            c1 = sum(o.health.cond1_ok for o in outs)
            c2 = sum(o.health.cond2_ok for o in outs)
            c3 = sum(o.health.cond3_ok for o in outs)
            healthy = sum(o.health.healthy for o in outs)
            sufficient = sum(o.health.sufficient for o in outs)
            ok = sum(o.success for o in outs)
            pred = predict_healthiness(PARAMS, p)
            rows.append(
                [f"{p:.1e}", c1 / TRIALS, c2 / TRIALS, c3 / TRIALS,
                 healthy / TRIALS, sufficient / TRIALS, ok / TRIALS,
                 f"<={pred.total_bound:.2g}"]
            )
        return rows

    rows = run_once(benchmark, compute)
    table = Table(
        ["p", "cond1", "cond2", "cond3", "healthy", "sufficient", "recovered",
         "predicted unhealthy"],
        title=f"E4: Lemma 4 healthiness attribution (B^2_{PARAMS.n}, {TRIALS} trials)",
    )
    for r in rows:
        table.add_row(r)
    report("e4_healthiness", table)

    for r in rows:
        # Lemma 5's implication, empirically: recovery rate >= sufficient rate.
        assert float(r[6]) >= float(r[5]) - 1e-9
        # union bound actually bounds measured unhealthiness (with MC slack)
        bound = float(r[7].lstrip("<="))
        assert (1.0 - float(r[4])) <= min(1.0, bound + 0.25)
    # condition 2 (brick fault count, s=1) is the first to break as p grows
    assert float(rows[-1][2]) <= float(rows[-1][1])
