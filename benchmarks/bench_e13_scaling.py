"""E13 — performance scaling of construction and recovery.

Timings per pipeline stage across instance sizes (pytest-benchmark rows),
plus a one-shot table of end-to-end recovery wall time vs N demonstrating
near-linear behaviour.
"""

from __future__ import annotations

import time

import numpy as np
import pytest
from conftest import run_once

from repro.core.bn import BTorus
from repro.core.bn_graph import BnGraph
from repro.core.params import BnParams
from repro.util.rng import spawn_rng
from repro.util.tables import Table

SIZES = [
    BnParams(d=2, b=3, s=1, t=2),  # 1 944 nodes
    BnParams(d=2, b=4, s=1, t=2),  # 12 288
    BnParams(d=2, b=4, s=1, t=4),  # 49 152
    BnParams(d=2, b=5, s=2, t=2),  # 37 500
]


def test_e13_end_to_end_scaling(benchmark, report):
    def compute():
        rows = []
        for params in SIZES:
            bt = BTorus(params)
            faults = bt.sample_faults(params.paper_fault_probability, spawn_rng(0, params.n))
            t0 = time.perf_counter()
            ok = bt.survives(faults)
            dt = time.perf_counter() - t0
            rows.append(
                [params.num_nodes, params.n, f"{1e3 * dt:.0f}",
                 f"{1e6 * dt / params.num_nodes:.1f}", "yes" if ok else "no"]
            )
        return rows

    rows = run_once(benchmark, compute)
    table = Table(
        ["host nodes", "n", "recover ms", "us/node", "recovered"],
        title="E13: end-to-end recovery wall time vs instance size",
    )
    for r in rows:
        table.add_row(r)
    report("e13_scaling", table)
    # near-linear: per-node cost does not blow up with size
    per_node = [float(r[3]) for r in rows]
    assert max(per_node) <= 25 * min(per_node)


#: The batch backend reaches sizes the scalar table never could: the
#: largest entry is 27x the biggest scalar SIZES instance.  Survival
#: *should* sag on the biggest rows — they scale n at fixed b, walking
#: out of Theorem 2's b ~ log n regime; measuring that sag past a
#: million host nodes is exactly what the scalar path was too slow to
#: do.  The 1.35M row is the streaming-runner headline instance
#: (bench_e21_streaming.py) riding the same sweep.
BATCH_SIZES = SIZES + [
    BnParams(d=2, b=5, s=2, t=4),    # 150 000 nodes
    BnParams(d=2, b=5, s=2, t=8),    # 600 000 nodes
    BnParams(d=2, b=5, s=2, t=12),   # 1 350 000 nodes
]


def test_e13_batched_scaling(benchmark, report):
    """Batched survival wall time vs size — the larger-feasible-n claim.

    Per-trial cost on the batch path is sampling + reductions, so a
    whole 16-trial Monte-Carlo at 600k nodes costs well under a second —
    territory where a single scalar trial already cost more."""
    from repro.api import FaultSpec
    from repro.api.registry import get

    trials = 16

    def compute():
        rows = []
        for params in BATCH_SIZES:
            bn = get("bn", d=params.d, b=params.b, s=params.s, t=params.t)
            spec = FaultSpec(p=params.paper_fault_probability)
            t0 = time.perf_counter()
            outs = bn.run_batch(spec, list(range(trials)))
            dt = time.perf_counter() - t0
            ok = sum(o.success for o in outs)
            rows.append(
                [params.num_nodes, params.n, trials, f"{1e3 * dt:.0f}",
                 f"{1e3 * dt / trials:.2f}", f"{ok}/{trials}"]
            )
        return rows

    rows = run_once(benchmark, compute)
    table = Table(
        ["host nodes", "n", "trials", "total ms", "ms/trial", "survived"],
        title="E13b: batched survival Monte-Carlo wall time vs instance size",
    )
    for r in rows:
        table.add_row(r)
    report("e13_batched_scaling", table)

    scalar_max = max(p.num_nodes for p in SIZES)
    assert max(p.num_nodes for p in BATCH_SIZES) > 2 * scalar_max
    # Whole 16-trial sweeps stay cheap even at ~200k nodes.
    assert all(float(r[3]) < 30_000 for r in rows)


@pytest.mark.parametrize("i", [0, 1], ids=["n36", "n96"])
def test_e13_healthiness_speed(benchmark, i):
    params = SIZES[i]
    bt = BTorus(params)
    faults = bt.sample_faults(params.paper_fault_probability, spawn_rng(1))
    benchmark(lambda: bt.check_health(faults))


@pytest.mark.parametrize("i", [0, 1], ids=["n36", "n96"])
def test_e13_extraction_speed(benchmark, i):
    from repro.core.placement import place_bands
    from repro.core.reconstruction import extract_torus

    params = SIZES[i]
    bn = BnGraph(params)
    faults = np.zeros(params.shape, dtype=bool)
    faults[0, 0] = True
    bands = place_bands(params, faults)
    benchmark(lambda: extract_torus(bn, bands, faults))
