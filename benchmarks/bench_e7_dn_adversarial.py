"""E7 — Theorem 13: D^2_{n,k} tolerates ANY k faults; size and degree claims.

Campaign table: every adversarial pattern at exactly the rated budget k
must yield 100% verified recovery (one :class:`ExperimentSpec` whose grid
spans the adversary patterns).  Structure table: degree exactly 8 and
nodes <= (n + k^{4/3})^2.
"""

from __future__ import annotations

from conftest import run_once

from repro.api import ExperimentRunner, ExperimentSpec, FaultSpec
from repro.core.dn import DTorus
from repro.core.params import DnParams
from repro.faults.adversary import ADVERSARY_PATTERNS
from repro.util.tables import Table

PARAMS = DnParams(d=2, n=70, b=2)
TRIALS = 6


def test_e7_adversarial_campaigns(benchmark, report):
    patterns = sorted(ADVERSARY_PATTERNS)
    spec = ExperimentSpec(
        construction="dn",
        params={"d": PARAMS.d, "n": PARAMS.n, "b": PARAMS.b},
        grid=tuple(FaultSpec(pattern=pattern, k=PARAMS.k) for pattern in patterns),
        trials=TRIALS,
        name="e7 adversarial",
    )

    def compute():
        result = ExperimentRunner().run(spec)
        return {pt.fault_spec.pattern: pt.result for pt in result.points}

    results = run_once(benchmark, compute)
    table = Table(
        ["pattern", "faults", "trials", "recovered", "rate"],
        title=f"E7: D^2_(n={PARAMS.n}, k={PARAMS.k}) vs adversarial campaigns",
    )
    for pattern in patterns:
        r = results[pattern]
        table.add_row([pattern, PARAMS.k, r.trials, r.successes, f"{r.success_rate:.2f}"])
    report("e7_dn_adversarial", table)

    # Theorem 13: zero losses at the rated budget, for every pattern.
    for pattern in patterns:
        assert results[pattern].success_rate == 1.0, pattern


def test_e7_structure_claims(benchmark, report):
    def compute():
        dt = DTorus(PARAMS)
        degs = dt.graph().degrees()
        return int(degs.min()), int(degs.max()), dt.num_nodes

    dmin, dmax, nodes = run_once(benchmark, compute)
    table = Table(["claim", "paper", "measured"], title="E7b: D^2 structure claims")
    table.add_row(["degree", 8, f"{dmin}..{dmax}"])
    table.add_row(["nodes <= (n+k^{4/3})^2 (+CRT slack)", PARAMS.paper_node_bound, nodes])
    report("e7_dn_structure", table)
    assert dmin == dmax == 8
    assert nodes <= PARAMS.paper_node_bound


def test_e7_adaptive_pigeonhole_attack(benchmark, report):
    """The cascade-aware adversary (spreads faults uniformly over every
    separator residue class) — the strongest attack we know; Theorem 13
    must still absorb it at the rated budget."""
    from repro.faults.adversary import pigeonhole_attack
    from repro.util.rng import spawn_rng

    def compute():
        dt = DTorus(PARAMS)
        wins = 0
        for seed in range(TRIALS):
            f = pigeonhole_attack(PARAMS, spawn_rng(seed, "e7-adaptive"))
            dt.recover(f)  # raises on failure
            wins += 1
        return wins

    wins = run_once(benchmark, compute)
    table = Table(["attack", "faults", "trials", "recovered"], title="E7c: adaptive attack")
    table.add_row(["pigeonhole-aware", PARAMS.k, TRIALS, wins])
    report("e7_dn_adaptive", table)
    assert wins == TRIALS


def test_e7_recovery_speed(benchmark):
    from repro.faults.adversary import adversarial_node_faults
    from repro.util.rng import spawn_rng

    dt = DTorus(PARAMS)
    faults = adversarial_node_faults(PARAMS.shape, PARAMS.k, "random", spawn_rng(0))
    benchmark(lambda: dt.recover(faults, verify=False))
