"""E20 — sustained throughput and latency of the serve daemon, and its gate.

Boots a :class:`repro.serve.server.ReproServer` on an ephemeral port,
drives it with the :class:`repro.serve.client.LoadGenerator` (real TCP
sockets, concurrent clients mixing fault/repair ingest with live traffic
queries), and records sustained requests/sec plus p50/p99 request latency
in ``BENCH_serve.json`` at the repo root.

Runs two ways:

* ``pytest benchmarks/bench_e20_serve.py`` — bench-suite integration
  (full measurement, table artifact, regenerates the JSON);
* ``python benchmarks/bench_e20_serve.py [--quick] [--check PATH]`` —
  the CI serve gate.  Both tiers drive >= 1,000 total requests from
  >= 4 concurrent clients (the ISSUE 6 acceptance floor).  The gate is
  deliberately an *invariant* gate, not a wall-clock one: raw req/s on a
  shared CI runner is scheduler noise, but zero erroring frames, zero
  client exceptions, a machine that survives the workload, a well-formed
  telemetry snapshot, and byte-identical online-vs-offline machine state
  are all load-independent.  A generous absolute throughput floor
  (``MIN_RPS``) still catches pathological regressions (an accidentally
  serialised event loop, a stray sleep) without ever tripping on jitter.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

SERVE_JSON = ROOT / "BENCH_serve.json"

#: ISSUE 6 acceptance floor: >= 1,000 requests from >= 4 concurrent clients.
CLIENTS = 4
QUICK_REQUESTS = 1_000
FULL_REQUESTS = 2_000
QUICK_MESSAGES = 8
FULL_MESSAGES = 32

#: Pathological-regression floor for the gate (absolute, deliberately far
#: below any healthy measurement — see module doc).
MIN_RPS = 50.0

#: Keys a machine telemetry snapshot must carry to count as well-formed.
TELEMETRY_KEYS = (
    "events", "traffic", "machine", "construction", "alive",
    "arrivals_survived", "live_faults", "repair_backlog", "seq",
)


def measure_loadgen(requests: int, messages: int, *, seed: int = 0) -> dict:
    """One sustained loadgen burst against an in-process daemon.

    The daemon and the clients share one event loop but talk over real
    TCP sockets on localhost — the same wire path `repro-ft serve` +
    `repro-ft loadgen` exercise across processes, minus fork overhead
    that would only add noise to a throughput number.
    """
    from repro.serve.client import LoadGenConfig, LoadGenerator
    from repro.serve.server import ReproServer, ServeConfig

    async def go() -> dict:
        server = ReproServer(ServeConfig(port=0, telemetry_interval=0.25))
        await server.start()
        try:
            config = LoadGenConfig(
                port=server.port,
                clients=CLIENTS,
                requests=requests,
                messages=messages,
                seed=seed,
            )
            report = await LoadGenerator(config).run()
            report["server_telemetry"] = server.telemetry.snapshot(0.0)
        finally:
            server.request_shutdown()
            await server.serve_until_shutdown()
        return report

    t0 = time.perf_counter()
    report = asyncio.run(go())
    report["wall_s"] = round(time.perf_counter() - t0, 3)
    latency = report["latency"]
    report["headline"] = {
        "clients": CLIENTS,
        "requests": report["totals"]["requests"],
        "requests_per_s": round(report["requests_per_s"], 1),
        "p50_ms": round(latency["p50_ms"], 3),
        "p99_ms": round(latency["p99_ms"], 3),
        "errors": report["totals"]["errors"],
        "client_exceptions": report["totals"]["client_exceptions"],
    }
    return report


def measure_determinism() -> dict:
    """Ingest a scripted event sequence over TCP; compare the resulting
    machine digest byte-for-byte against the offline LifetimeSpec path."""
    from repro.api.protocol import LifetimeSpec
    from repro.serve.client import ServeClient
    from repro.serve.server import ReproServer, ServeConfig
    from repro.serve.state import offline_digest, scripted_events

    params = {"d": 2, "b": 3, "s": 1, "t": 2}
    spec = LifetimeSpec(timeline="bernoulli", rate=0.0005, repair_rate=0.3,
                        max_steps=40)
    seed = 3

    async def go() -> dict:
        server = ReproServer(ServeConfig(port=0))
        await server.start()
        try:
            client = await ServeClient.connect("127.0.0.1", server.port)
            await client.request("create", machine="m", construction="bn",
                                 params=params)
            events = scripted_events("bn", params, spec, seed)
            await client.request("events", machine="m",
                                 events=[[k, n] for k, n in events])
            digest = await client.request("digest", machine="m")
            telemetry = await client.request("telemetry", machine="m", health=True)
            await client.close()
            return {"digest": digest, "telemetry": telemetry,
                    "events": len(events)}
        finally:
            server.request_shutdown()
            await server.serve_until_shutdown()

    wire = asyncio.run(go())
    offline = offline_digest("bn", params, spec, seed)
    identical = json.dumps(wire["digest"], sort_keys=True) == json.dumps(
        offline, sort_keys=True
    )
    return {
        "construction": "bn",
        "params": params,
        "spec": spec.to_dict(),
        "seed": seed,
        "events_ingested": wire["events"],
        "online_equals_offline": identical,
        "telemetry": wire["telemetry"],
    }


def check_invariants(data: dict) -> list[str]:
    """The gate: every violated serve invariant, as a human-readable line."""
    problems: list[str] = []
    head = data["quick"]["headline"]
    totals = data["quick"]["totals"]
    if head["clients"] < 4:
        problems.append(f"only {head['clients']} concurrent clients (need >= 4)")
    if head["requests"] < 1_000:
        problems.append(f"only {head['requests']} total requests (need >= 1000)")
    if head["errors"] or head["client_exceptions"]:
        problems.append(
            f"{head['errors']} erroring and {head['client_exceptions']} "
            "dropped/aborted frames (need zero)"
        )
    if totals["machine_died"]:
        problems.append("the machine died under load")
    if head["requests_per_s"] < MIN_RPS:
        problems.append(
            f"throughput {head['requests_per_s']} req/s below the "
            f"pathological-regression floor {MIN_RPS}"
        )
    snapshot = data["quick"]["telemetry"]
    missing = [k for k in TELEMETRY_KEYS if k not in snapshot]
    if missing:
        problems.append(f"telemetry snapshot missing keys: {missing}")
    if not data["determinism"]["online_equals_offline"]:
        problems.append("online ingestion digest differs from the offline path")
    return problems


def measure(quick: bool) -> dict:
    requests = QUICK_REQUESTS if quick else FULL_REQUESTS
    messages = QUICK_MESSAGES if quick else FULL_MESSAGES
    data = {
        "benchmark": (
            "serve daemon under sustained mixed load: concurrent TCP clients "
            "alternating fault/repair ingest with live-embedding traffic "
            "queries (repro.serve; bn d=2 b=3 machine)"
        ),
        "machine_cpus": os.cpu_count(),
        "note": (
            "requests_per_s and the latency percentiles are recorded for "
            "humans; the CI gate checks load-independent invariants (zero "
            "erroring frames, surviving machine, well-formed telemetry, "
            "online==offline state digest) plus an absolute throughput "
            "floor, because raw req/s on a shared runner is scheduler noise"
        ),
        "quick": measure_loadgen(QUICK_REQUESTS, QUICK_MESSAGES, seed=0),
        "determinism": measure_determinism(),
    }
    if not quick:
        data["full"] = measure_loadgen(requests, messages, seed=1)
    return data


# -- pytest integration ------------------------------------------------------


def test_e20_serve_throughput(benchmark, report):
    from conftest import run_once

    from repro.util.tables import Table

    def compute():
        data = measure(quick=False)
        SERVE_JSON.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
        return data

    data = run_once(benchmark, compute)
    table = Table(
        ["case", "clients", "requests", "req/s", "p50 ms", "p99 ms", "errors"],
        title="E20: serve daemon sustained mixed load",
    )
    for key in ("quick", "full"):
        h = data[key]["headline"]
        table.add_row([key, h["clients"], h["requests"], h["requests_per_s"],
                       h["p50_ms"], h["p99_ms"],
                       h["errors"] + h["client_exceptions"]])
    report("e20_serve", table)

    assert not check_invariants(data)


# -- CLI / CI gate -----------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="one acceptance-floor burst (the CI serve gate)")
    ap.add_argument("--check", nargs="?", const="-", metavar="BASELINE",
                    help="verify the serve invariants (zero erroring frames, "
                         "surviving machine, well-formed telemetry, "
                         "online==offline digest); with a BASELINE path also "
                         "require that its recorded invariants still held")
    ap.add_argument("--out", metavar="PATH",
                    help="write measurement JSON here (full mode defaults to "
                         "BENCH_serve.json)")
    args = ap.parse_args(argv)

    data = measure(quick=args.quick)
    summary = {k: data[k] for k in ("quick", "determinism")}
    print(json.dumps(
        {"quick": summary["quick"]["headline"],
         "determinism": {
             "events_ingested": summary["determinism"]["events_ingested"],
             "online_equals_offline":
                 summary["determinism"]["online_equals_offline"],
         }},
        indent=2, sort_keys=True,
    ))

    if args.out:
        Path(args.out).write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    elif not args.quick:
        SERVE_JSON.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
        print(f"wrote {SERVE_JSON}")

    if args.check:
        problems = check_invariants(data)
        if args.check != "-":
            baseline = json.loads(Path(args.check).read_text())
            if not baseline.get("determinism", {}).get("online_equals_offline"):
                problems.append(
                    "committed baseline itself records a determinism break "
                    "(regenerate BENCH_serve.json)"
                )
        for problem in problems:
            print(f"serve gate: {problem}", file=sys.stderr)
        if problems:
            print("FAIL: serve invariants violated", file=sys.stderr)
            return 1
        print("serve gate: all invariants hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
