"""FIG1 / FIG2: regenerate the paper's two figures (ASCII artifacts)."""

from __future__ import annotations

from conftest import run_once


def test_figure1_bands(benchmark, report):
    from repro.viz import figure1

    fig = run_once(benchmark, figure1)
    report("fig1_bands", fig.title + "\n" + fig.text + f"\nmeta: {fig.meta}")
    # Paper Figure 1's content: several bands, at least one winding.
    assert fig.meta["bands"] >= 2
    assert fig.meta["wandering_bands"] >= 1
    assert "X" in fig.text and "!" not in fig.text  # faults masked


def test_figure2_row_trace(benchmark, report):
    from repro.viz import figure2

    fig = run_once(benchmark, figure2)
    report("fig2_row_trace", fig.title + "\n" + fig.text + f"\nmeta: {fig.meta}")
    # Paper Figure 2's content: the row hops over bands with diagonal jumps.
    assert fig.meta["jumps"] >= 1
    assert fig.meta["verified_nodes"] == 36 ** 2
