"""E14 — end-to-end usability: serving traffic on a recovered torus.

The dilation-1 embedding means the surviving machine routes *identically*
to a pristine torus, so traffic is measured on the guest torus the
recovery hands back.  Since the traffic engine became the repo's fourth
pillar this bench runs through the :class:`ExperimentRunner` with
``TrafficSpec`` grid points: a per-pattern closed-loop table (message
counts are now **exact** — the generators resample until precisely the
requested count, where they previously returned a pattern- and
seed-dependent shortfall) and an open-loop saturation sweep the old
inject-everything-at-cycle-0 model could not express at all.

Also times the scalar engine against the vectorized lockstep kernel at
this size and records the ISSUE 4 headline (>= 10x, identical results)
in ``BENCH_traffic.json`` at the repo root.
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from pathlib import Path

import numpy as np
from conftest import run_once

from repro.api import ExperimentRunner, ExperimentSpec, TrafficSpec
from repro.api.traffic import message_classes
from repro.core.bn import BTorus
from repro.core.params import BnParams
from repro.errors import ReconstructionError
from repro.fastpath.traffic_batch import sim_results_identical, simulate_batch
from repro.sim import make_open_loop, make_traffic, simulate
from repro.sim.metrics import latency_stats, per_class_stats
from repro.sim.routing import fault_predicates
from repro.topology.coords import CoordCodec
from repro.util.rng import spawn_rng
from repro.util.tables import Table

ROOT = Path(__file__).resolve().parent.parent
TRAFFIC_JSON = ROOT / "BENCH_traffic.json"

PARAMS = BnParams(d=2, b=3, s=1, t=2)
PATTERNS = ("uniform", "transpose", "neighbor", "hotspot")
MESSAGES = 250
#: Per-node per-cycle injection rates; uniform e-cube on this torus has its
#: capacity knee near 4 links / ~18 mean hops ~ 0.22, so the top rates are
#: past saturation.
SATURATION_RATES = (0.01, 0.05, 0.1, 0.2, 0.3)


def _recovered_shape():
    bt = BTorus(PARAMS)
    for seed in range(25):
        faults = bt.sample_faults(
            PARAMS.paper_fault_probability, spawn_rng(seed, "e14")
        )
        try:
            rec = bt.recover(faults)
            return rec.guest_shape(), int(faults.sum())
        except ReconstructionError:
            continue
    raise RuntimeError("no recoverable draw")


def test_e14_recovered_equals_pristine(benchmark, report):
    """Closed-loop per-pattern table, through the runner on the bn guest."""

    def compute():
        shape, nfaults = _recovered_shape()
        # The recovered torus *is* the guest torus the runner's traffic
        # trials measure — the dilation-1 identity this bench exists for.
        assert shape == (PARAMS.n,) * PARAMS.d
        spec = ExperimentSpec.from_grid(
            "bn", {"d": PARAMS.d, "b": PARAMS.b, "s": PARAMS.s, "t": PARAMS.t},
            traffic=[TrafficSpec(pattern=p, messages=MESSAGES) for p in PATTERNS],
            trials=3, seed0=3, name="e14-patterns",
        )
        result = ExperimentRunner(batch=True).run(spec)
        rows = []
        for pt in result.points:
            r = pt.result
            o = r.outcomes[0]
            rows.append(
                [pt.fault_spec.pattern, o.offered, f"{r.mean_latency:.2f}",
                 f"{r.worst_p99:.0f}", f"{r.mean_throughput:.2f}"]
            )
        return nfaults, rows

    nfaults, rows = run_once(benchmark, compute)
    table = Table(
        ["pattern", "messages (exact)", "mean latency", "p99", "throughput"],
        title=f"E14: traffic on a torus recovered from {nfaults} faults "
        "(identical to pristine by dilation-1; message counts are exact — "
        "generators resample to the requested count)",
    )
    for r in rows:
        table.add_row(r)
    report("e14_routing", table)

    # Shape claims: neighbour traffic is near-1-cycle; transpose/hotspot pay
    # more than uniform (classic ordering).
    stats = {r[0]: float(r[2]) for r in rows}
    assert stats["neighbor"] < stats["uniform"]
    assert stats["hotspot"] >= stats["uniform"] * 0.9
    # Exactness: every pattern presented exactly the requested batch.
    assert all(r[1] == MESSAGES for r in rows)


def test_e14_saturation_sweep(benchmark, report):
    """Open-loop saturation: offered rate vs delivered throughput."""

    def compute():
        spec = ExperimentSpec.from_grid(
            "bn", {"d": PARAMS.d, "b": PARAMS.b, "s": PARAMS.s, "t": PARAMS.t},
            traffic=[
                TrafficSpec(pattern="uniform", injection="bernoulli", rate=r,
                            cycles=300, warmup=60, max_cycles=4000)
                for r in SATURATION_RATES
            ],
            trials=2, name="e14-saturation",
        )
        result = ExperimentRunner(batch=True).run(spec)
        rows = []
        for rate, pt in zip(SATURATION_RATES, result.points):
            o = pt.result.outcomes[0]  # trial 0 shown; trials agree in shape
            # Same window convention as open_loop_stats: the injection span
            # from the spec, never the drain-inclusive run length.
            window = max(pt.fault_spec.cycles - pt.fault_spec.warmup, 1)
            rows.append(
                [f"{rate:g}", f"{o.offered / window:.2f}", f"{o.throughput:.2f}",
                 f"{o.mean_latency:.1f}", f"{o.p99:.0f}", o.timed_out]
            )
        return rows

    rows = run_once(benchmark, compute)
    table = Table(
        ["inject rate", "offered/cyc", "delivered/cyc", "mean lat", "p99", "timed out"],
        title="E14: open-loop saturation sweep on the bn guest torus "
        "(bernoulli injection, 300-cycle horizon, 60-cycle warmup)",
    )
    for r in rows:
        table.add_row(r)
    report("e14_saturation", table)

    # Below saturation the network keeps up (delivered ~ offered); past it
    # latency blows up and delivered throughput peels away from offered.
    low, high = rows[0], rows[-1]
    assert float(low[2]) >= 0.8 * float(low[1])
    assert float(high[3]) > float(low[3])
    assert float(high[2]) < 0.8 * float(high[1])


def _healthy_connected(shape, fault_flat) -> bool:
    """Is the healthy subgraph of the ``shape`` torus one component?"""
    codec = CoordCodec(shape)
    healthy = np.flatnonzero(~fault_flat)
    if not len(healthy):
        return False
    seen = np.zeros(codec.size, dtype=bool)
    seen[healthy[0]] = True
    q = deque([int(healthy[0])])
    while q:
        u = q.popleft()
        cu = codec.unravel(u)
        for axis, n in enumerate(shape):
            for delta in (1, -1):
                cv = list(cu)
                cv[axis] = (cv[axis] + delta) % n
                v = int(codec.ravel(cv))
                if not seen[v] and not fault_flat[v]:
                    seen[v] = True
                    q.append(v)
    return bool(seen[healthy].all())


def _aged_torus(shape, *, rate=0.0015, repair_rate=0.25, max_steps=60):
    """A lifetimed (bernoulli faults + repairs, no recovery) fault mask.

    Seeds are searched until the timeline leaves live faults that (a)
    keep the healthy subgraph connected and (b) break at least one
    uniform-workload e-cube route — the regime where the router choice
    is visible.  Deterministic: the first qualifying seed is fixed.
    """
    from repro.api.lifetime import drive_timeline
    from repro.api.protocol import LifetimeSpec

    spec = LifetimeSpec(
        timeline="bernoulli", rate=rate, repair_rate=repair_rate, max_steps=max_steps
    )
    for seed in range(50):
        faults = np.zeros(shape, dtype=bool)
        flat = faults.ravel()

        def on_fault(node: int) -> str:
            if flat[node]:
                return "masked"
            flat[node] = True
            return "replaced"

        def on_repair(node: int) -> None:
            flat[node] = False

        drive_timeline(
            spec, shape, spawn_rng(seed, "e14-aged"),
            on_fault=on_fault, on_repair=on_repair,
        )
        if not flat.any() or not _healthy_connected(shape, flat):
            continue
        node_ok, edge_ok = fault_predicates(flat)
        probe = make_traffic(shape, "uniform", 100, spawn_rng(seed, "e14-probe"))
        alive = ~flat[probe[:, 0]] & ~flat[probe[:, 1]]
        broken = simulate_batch(
            shape, probe[alive], max_cycles=1, node_ok=node_ok, edge_ok=edge_ok
        ).undeliverable
        if broken > 0:
            return seed, flat
    raise RuntimeError("no aged draw with broken-but-connected routes")


def test_e14_router_class_matrix(benchmark, report):
    """Router x QoS-class service matrix on a lifetimed machine.

    The machine has lived through a bernoulli fault/repair timeline and
    carries live faults with **no** recovery layer — the ablation the
    adaptive router exists for (a recovered ``bn`` machine re-embeds
    around its faults, so both routers serve it pristinely; see the
    serve-session golden).  Faulty nodes neither inject nor receive.
    Below saturation the acceptance bar is: dimension-order refuses
    routes through the fault set, the adaptive router delivers **every**
    message (healthy subgraph connected => zero undeliverable, zero
    timed out), and QoS class 0 never waits behind lower classes.
    """

    def compute():
        shape = (PARAMS.n,) * PARAMS.d
        seed, fault_flat = _aged_torus(shape)
        node_ok, edge_ok = fault_predicates(fault_flat)
        traffic, inject = make_open_loop(
            shape, "uniform", 0.05, 300, spawn_rng(seed, "e14-matrix")
        )
        # Live nodes only: a faulty node neither injects nor receives.
        alive = ~fault_flat[traffic[:, 0]] & ~fault_flat[traffic[:, 1]]
        traffic, inject = traffic[alive], inject[alive]
        rows = []
        for router in ("dimension", "adaptive"):
            for qos in (1, 2, 3):
                classes = message_classes(len(traffic), qos)
                r = simulate_batch(
                    shape, traffic, inject=inject, max_cycles=4000,
                    router=router, node_ok=node_ok, edge_ok=edge_ok,
                    classes=classes, credits=0,
                )
                stats = latency_stats(r)
                if classes is not None:
                    per = per_class_stats(r, classes)
                    c0_p99 = per[0]["p99"]
                    cn_p99 = per[-1]["p99"]
                else:
                    c0_p99 = cn_p99 = stats["p99"]
                rows.append({
                    "router": router, "qos": qos,
                    "offered": len(traffic),
                    "delivered": r.delivered,
                    "undeliverable": r.undeliverable,
                    "timed_out": r.timed_out,
                    "p99": stats["p99"],
                    "c0_p99": c0_p99, "cn_p99": cn_p99,
                })
        return int(fault_flat.sum()), rows

    nfaults, rows = run_once(benchmark, compute)
    table = Table(
        ["router", "classes", "offered", "delivered", "undeliverable",
         "timed out", "p99", "class0 p99", "worst-class p99"],
        title=f"E14: router x QoS class matrix on a lifetimed torus with "
        f"{nfaults} live faults and no recovery layer (open loop, rate 0.05 "
        "— below saturation; faulty nodes neither inject nor receive)",
    )
    for r in rows:
        table.add_row(
            [r["router"], r["qos"], r["offered"], r["delivered"],
             r["undeliverable"], r["timed_out"], f"{r['p99']:.0f}",
             f"{r['c0_p99']:.0f}", f"{r['cn_p99']:.0f}"]
        )
    report("e14_router_class", table)

    dim = [r for r in rows if r["router"] == "dimension"]
    ada = [r for r in rows if r["router"] == "adaptive"]
    # Dimension-order refuses routes through the live fault set...
    assert all(r["undeliverable"] > 0 for r in dim)
    # ...and the adaptive router delivers every single message: the
    # healthy subgraph is connected, so nothing is undeliverable, and
    # below saturation nothing times out either.
    assert all(r["undeliverable"] == 0 for r in ada)
    assert all(r["timed_out"] == 0 for r in ada)
    assert all(r["delivered"] == r["offered"] for r in ada)
    # Priority is real: the top class never fares worse than the bottom.
    for r in rows:
        if r["qos"] > 1 and not (np.isnan(r["c0_p99"]) or np.isnan(r["cn_p99"])):
            assert r["c0_p99"] <= r["cn_p99"]


def measure_kernel(messages: int = 2000, repeats: int = 3) -> dict:
    """Scalar engine vs vectorized kernel at the e14 size; identity + timing."""
    shape = (PARAMS.n,) * PARAMS.d
    cases = {}
    closed = make_traffic(shape, "uniform", messages, spawn_rng(3, "bench"))
    open_t, open_i = make_open_loop(
        shape, "uniform", 0.02, 300, spawn_rng(5, "bench-ol")
    )
    for name, args, kwargs in (
        ("closed_batch", (shape, closed), {}),
        ("open_loop", (shape, open_t), {"inject": open_i}),
    ):
        simulate_batch(*args, **kwargs)  # warm
        scalar_s = batch_s = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            a = simulate(*args, **kwargs)
            scalar_s = min(scalar_s, time.perf_counter() - t0)
        for _ in range(repeats):
            t0 = time.perf_counter()
            b = simulate_batch(*args, **kwargs)
            batch_s = min(batch_s, time.perf_counter() - t0)
        cases[name] = {
            "messages": int(len(args[1])),
            "cycles": int(a.cycles),
            "timing_repeats": repeats,
            "scalar_s": round(scalar_s, 4),
            "batch_s": round(batch_s, 4),
            "speedup": round(scalar_s / batch_s, 2) if batch_s > 0 else float("inf"),
            "results_identical": sim_results_identical(a, b),
        }
    return {
        "benchmark": (
            "scalar simulate vs vectorized simulate_batch on the e14 guest "
            f"torus {shape}, identical traffic and SimResults "
            "(repro.fastpath.traffic_batch)"
        ),
        "machine_cpus": os.cpu_count(),
        "shape": list(shape),
        "note": (
            "speedups are same-machine scalar/batched ratios (portable "
            "across runners); the CI perf gate replays a smaller "
            "traffic_quick configuration via bench_e18 --quick --check "
            "against BENCH_fastpath.json"
        ),
        **cases,
    }


def test_e14_kernel_speedup(benchmark, report):
    """ISSUE 4 acceptance: >= 10x at the e14 size, recorded in
    BENCH_traffic.json."""

    def compute():
        data = measure_kernel()
        TRAFFIC_JSON.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
        return data

    data = run_once(benchmark, compute)
    table = Table(
        ["case", "messages", "scalar s", "batch s", "speedup", "identical"],
        title="E14: scalar engine vs vectorized traffic kernel (BENCH_traffic.json)",
    )
    for key in ("closed_batch", "open_loop"):
        c = data[key]
        table.add_row(
            [key, c["messages"], c["scalar_s"], c["batch_s"],
             f"{c['speedup']:.1f}x", "yes" if c["results_identical"] else "NO"]
        )
    report("e14_kernel", table)
    for key in ("closed_batch", "open_loop"):
        assert data[key]["results_identical"]
        assert data[key]["speedup"] >= 10.0, (
            f"{key}: batched speedup {data[key]['speedup']}x < 10x"
        )


def test_e14_simulator_speed(benchmark):
    shape = (PARAMS.n, PARAMS.n)
    traffic = make_traffic(shape, "uniform", 200, spawn_rng(5))
    benchmark(lambda: simulate(shape, traffic))


def test_e14_batched_simulator_speed(benchmark):
    shape = (PARAMS.n, PARAMS.n)
    traffic = make_traffic(shape, "uniform", 200, spawn_rng(5))
    benchmark(lambda: simulate_batch(shape, traffic))
