"""E14 — end-to-end usability: routing on a recovered torus.

The dilation-1 embedding means the surviving machine routes *identically*
to a pristine torus: latency distributions must match exactly pattern by
pattern.  Also times the simulator itself.
"""

from __future__ import annotations

from conftest import run_once

from repro.core.bn import BTorus
from repro.core.params import BnParams
from repro.errors import ReconstructionError
from repro.sim import latency_stats, make_traffic, simulate
from repro.util.rng import spawn_rng
from repro.util.tables import Table

PARAMS = BnParams(d=2, b=3, s=1, t=2)
PATTERNS = ("uniform", "transpose", "neighbor", "hotspot")
MESSAGES = 250


def _recovered_shape():
    bt = BTorus(PARAMS)
    for seed in range(25):
        faults = bt.sample_faults(
            PARAMS.paper_fault_probability, spawn_rng(seed, "e14")
        )
        try:
            rec = bt.recover(faults)
            return rec.guest_shape(), int(faults.sum())
        except ReconstructionError:
            continue
    raise RuntimeError("no recoverable draw")


def test_e14_recovered_equals_pristine(benchmark, report):
    def compute():
        shape, nfaults = _recovered_shape()
        rows = []
        for pattern in PATTERNS:
            traffic = make_traffic(shape, pattern, MESSAGES, spawn_rng(3, pattern))
            stats = latency_stats(simulate(shape, traffic))
            rows.append(
                [pattern, stats["total"], f"{stats['mean']:.2f}",
                 f"{stats['p99']:.0f}", f"{stats['throughput']:.2f}"]
            )
        return nfaults, rows

    nfaults, rows = run_once(benchmark, compute)
    table = Table(
        ["pattern", "messages", "mean latency", "p99", "throughput"],
        title=f"E14: traffic on a torus recovered from {nfaults} faults "
        "(identical to pristine by dilation-1)",
    )
    for r in rows:
        table.add_row(r)
    report("e14_routing", table)

    # Shape claims: neighbour traffic is near-1-cycle; transpose/hotspot pay
    # more than uniform (classic ordering).
    stats = {r[0]: float(r[2]) for r in rows}
    assert stats["neighbor"] < stats["uniform"]
    assert stats["hotspot"] >= stats["uniform"] * 0.9


def test_e14_simulator_speed(benchmark):
    shape = (PARAMS.n, PARAMS.n)
    traffic = make_traffic(shape, "uniform", 200, spawn_rng(5))
    benchmark(lambda: simulate(shape, traffic))
