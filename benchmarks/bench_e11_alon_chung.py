"""E11 — Theorem 12 (Alon–Chung) and Section 5's product-mesh construction.

Executable claims: an explicit constant-degree expander of ~2-3x the path
size retains an n-node path after a constant fraction of faults (random
and adversarial), and the product construction yields a d-dimensional mesh
tolerating O(n) worst-case faults.

The fault-fraction sweep is one :class:`ExperimentSpec` against the
``alon_chung`` registry entry.
"""

from __future__ import annotations

import numpy as np
from conftest import run_once

from repro.api import ExperimentRunner, ExperimentSpec
from repro.baselines.alon_chung import AlonChungMesh, AlonChungPath
from repro.baselines.expander import gabber_galil_expander, spectral_expansion
from repro.util.rng import spawn_rng
from repro.util.tables import Table


def test_e11_path_survival_vs_fault_fraction(benchmark, report):
    n = 60
    fractions = [0.0, 0.1, 0.2, 0.3, 0.4]
    TRIALS = 5
    spec = ExperimentSpec.from_grid(
        "alon_chung",
        {"n": n, "blowup": 3.0},
        p_values=fractions,
        trials=TRIALS,
        name="e11 path survival",
    )

    def compute():
        ac = AlonChungPath(n, blowup=3.0)
        result = ExperimentRunner().run(spec)
        rows = [
            [pt.fault_spec.p, f"{pt.result.successes}/{pt.result.trials}"]
            for pt in result.points
        ]
        return ac, rows

    ac, rows = run_once(benchmark, compute)
    table = Table(
        ["fault fraction", "path of n recovered"],
        title=f"E11: Alon–Chung path (n={n}, host {ac.num_nodes} nodes, "
        "Gabber–Galil expander) vs random fault fraction",
    )
    for r in rows:
        table.add_row(r)
    report("e11_path_survival", table)

    assert rows[0][1] == "5/5"  # no faults: always
    assert int(rows[1][1].split("/")[0]) >= 4  # 10% faults: nearly always
    # linear-fraction regime: still survives most trials at 30%
    assert int(rows[3][1].split("/")[0]) >= 3


def test_e11_expander_quality(benchmark, report):
    def compute():
        rows = []
        for q in (8, 12, 16):
            g = gabber_galil_expander(q)
            lam = spectral_expansion(g)
            rows.append([q * q, g.max_degree(), f"{lam:.2f}", f"{lam / 8:.2f}"])
        return rows

    rows = run_once(benchmark, compute)
    table = Table(
        ["nodes", "max degree", "lambda_2", "lambda_2 / d"],
        title="E11b: Gabber–Galil expander spectral quality",
    )
    for r in rows:
        table.add_row(r)
    report("e11_expander", table)
    assert all(float(r[3]) < 0.95 for r in rows)  # bounded away from trivial


def test_e11_product_mesh(benchmark, report):
    n = 14
    TRIALS = 4

    def compute():
        acm = AlonChungMesh(n, 2, blowup=3.0)
        rows = []
        for budget in (0, n // 2, n):
            wins = 0
            for seed in range(TRIALS):
                faulty = np.zeros(acm.num_nodes, dtype=bool)
                if budget:
                    idx = spawn_rng(seed, "e11-mesh", budget).choice(
                        acm.num_nodes, size=budget, replace=False
                    )
                    faulty[idx] = True
                wins += acm.tolerates(faulty)
            rows.append([budget, f"{wins}/{TRIALS}"])
        return acm, rows

    acm, rows = run_once(benchmark, compute)
    table = Table(
        ["worst-case faults", "mesh recovered"],
        title=f"E11c: Section 5 product construction F_n x L_n (n={n}, "
        f"{acm.num_nodes} nodes): O(n) faults",
    )
    for r in rows:
        table.add_row(r)
    report("e11_product_mesh", table)
    assert all(int(r[1].split("/")[0]) == TRIALS for r in rows)
