"""E9 — Section 1/5 comparison table for worst-case faults.

Paper's qualitative claims, regenerated:

* BCH (analytic, published bounds): degree 13, n^2 + O(k^3) nodes — wins on
  overhead for small k, but with linear redundancy tolerates only O(n^{2/3}).
* Tamaki D^2: degree 8, tolerates O(n^{3/4}) with linear redundancy —
  *more* faults than BCH once n is large (the crossover claim).
* Spare-rows (naive): tolerates k with degree O(k) — why constant-degree
  band hierarchies matter.
* Alon–Chung product mesh: tolerates O(n) worst-case faults with constant
  degree but only yields the MESH, needs an expander, and ours is the
  comparison the paper concedes is stronger asymptotically.
"""

from __future__ import annotations

from conftest import run_once

from repro.baselines.bch import (
    bch_mesh_degree,
    bch_mesh_nodes,
    bch_tolerated_for_linear_redundancy,
    tamaki_tolerated_for_linear_redundancy,
)
from repro.baselines.sparerows import SpareRowsTorus
from repro.core.params import DnParams
from repro.util.tables import Table


def test_e9_crossover_table(benchmark, report):
    def compute():
        rows = []
        for n in (100, 1000, 10_000, 100_000):
            bch_k = bch_tolerated_for_linear_redundancy(n)
            tam_k = tamaki_tolerated_for_linear_redundancy(n)
            rows.append([n, bch_k, tam_k, "Tamaki" if tam_k > bch_k else "BCH"])
        return rows

    rows = run_once(benchmark, compute)
    table = Table(
        ["n", "BCH k (n^{2/3})", "Tamaki k (n^{3/4})", "more faults tolerated"],
        title="E9: worst-case faults at linear redundancy — the crossover claim",
    )
    for r in rows:
        table.add_row(r)
    report("e9_crossover", table)
    assert all(r[3] == "Tamaki" for r in rows)  # paper: ours wins for all n
    # and the gap widens
    gaps = [r[2] / max(r[1], 1) for r in rows]
    assert gaps == sorted(gaps)


def test_e9_overhead_and_degree_table(benchmark, report):
    n = 70

    def compute():
        rows = []
        d2 = DnParams(d=2, n=n, b=2)  # k = 8
        rows.append(
            ["Tamaki D^2 (measured)", d2.k, d2.num_nodes, 8, "any k, proven + verified"]
        )
        rows.append(
            ["BCH (analytic)", d2.k, int(bch_mesh_nodes(n, d2.k)), bch_mesh_degree(),
             "any k, published bound"]
        )
        sr = SpareRowsTorus(n, sigma=d2.k)
        rows.append(
            ["spare-rows (measured)", sr.tolerated, sr.num_nodes, sr.degree,
             "any k, degree grows O(k)"]
        )
        return rows

    rows = run_once(benchmark, compute)
    table = Table(
        ["construction", "k", "nodes", "degree", "guarantee"],
        title=f"E9b: worst-case comparators at n = {n}",
    )
    for r in rows:
        table.add_row(r)
    report("e9_overhead_degree", table)

    tamaki, bch, spare = rows
    assert bch[2] < tamaki[2]  # paper concedes: BCH superior for small k
    assert tamaki[3] < bch[3]  # but D has the smaller degree
    assert spare[3] > tamaki[3]  # naive comparator pays degree O(k)


def test_e9_spare_rows_degree_growth(benchmark, report):
    """The naive construction's degree grows linearly with k; D^2 stays 8."""

    def compute():
        rows = []
        for k in (4, 8, 16, 32):
            sr = SpareRowsTorus(70, sigma=k)
            rows.append([k, sr.degree, 8])
        return rows

    rows = run_once(benchmark, compute)
    table = Table(
        ["k", "spare-rows degree", "D^2 degree"],
        title="E9c: degree vs fault budget",
    )
    for r in rows:
        table.add_row(r)
    report("e9_degree_growth", table)
    assert [r[1] for r in rows] == [12, 20, 36, 68]
    assert all(r[2] == 8 for r in rows)
