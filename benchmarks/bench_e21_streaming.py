"""E21 — million-scale streaming execution, and its CI gate.

Exercises the bounded-memory streaming runner (ISSUE 8) at the scales the
collect-then-merge execution path could not reach, and records the
numbers in ``BENCH_streaming.json`` at the repo root.  The headline
claims: a survival point on a **1.35-million-node** host and a
**1-million-trial** bn Monte-Carlo both complete under a fixed
``max_batch_bytes`` budget, with parent-process peak memory that does not
grow with the trial count.

Runs two ways:

* ``pytest benchmarks/bench_e21_streaming.py`` — bench-suite integration
  (full measurement, table artifact, regenerates ``BENCH_streaming.json``);
* ``python benchmarks/bench_e21_streaming.py [--quick] [--check PATH]``
  — the CI perf gate.  ``--quick`` replays three invariants in a couple
  of seconds: (a) the streamed incremental merge is byte-identical to
  the materialized collect-then-merge reference (including under a
  starved sub-chunk budget), (b) ``tracemalloc`` peak for a large-trial
  run under a tiny ``max_batch_bytes`` stays below a fixed ceiling and
  does not scale with trials, (c) resume from a journal cut at every
  chunk boundary reproduces the uninterrupted bytes.  ``--check``
  additionally compares the measured peak against the committed
  baseline.  Identity invariants are exact and machine-portable; the
  memory gate is in bytes, which ``tracemalloc`` makes deterministic
  enough to compare across runners with headroom.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import sys
import tempfile
import time
import tracemalloc
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
STREAMING_JSON = ROOT / "BENCH_streaming.json"

#: Sub-chunk budget for the quick memory case.  Deliberately tiny: the
#: 4096-trial chunks below would materialize ~10 MiB per chunk unsliced,
#: so staying near 1 MiB proves the slicer is doing the bounding.
QUICK_BUDGET = 1 * 1024 * 1024
#: Ceiling on parent-process tracemalloc peak for the quick case: the
#: reusable kernel buffer (<= QUICK_BUDGET) plus classifier temporaries
#: and the per-chunk result dicts.  Observed ~3.5-4.6 MB; the same spec
#: unsliced (64 MiB default budget) measures ~16 MB, so the ceiling sits
#: squarely between "slicer working" and "slicer bypassed".
QUICK_PEAK_LIMIT = 8 * QUICK_BUDGET
#: Peak at 4x the trials may exceed the smaller run's peak by at most
#: this factor.  The peak is set by the worst single chunk's transient
#: scalar-fallback work (data-dependent, non-monotone in trials), so the
#: ratio carries chunk-level variance; 2x is "flat modulo noise", while
#: genuinely trial-proportional growth would measure 4x.
TRIAL_GROWTH_LIMIT = 2.0
#: --check tolerance on peak bytes vs the committed baseline.
PEAK_TOLERANCE = 1.5

#: Quick-case instance (small shape, many trials, big chunks).  Both
#: trial counts use the same chunk_size: per-chunk state is O(chunk) by
#: design, so equal chunks isolate what the gate is really asserting —
#: that *total* trials never enter the memory equation.
QUICK_BN = dict(d=2, b=3, s=1, t=2)  # 1 944 host nodes
QUICK_TRIALS_SMALL = 2_048
QUICK_TRIALS_LARGE = 8_192
QUICK_CHUNK = 2_048

#: Full-mode instances.
MILLION_NODE_BN = dict(d=2, b=5, s=2, t=12)  # 1 350 000 host nodes
MILLION_TRIAL_BN = QUICK_BN
MILLION_TRIALS = 1_000_000
MILLION_TRIAL_CHUNK = 8_192
MILLION_BUDGET = 8 * 1024 * 1024


def _quick_identity_spec():
    from repro.api import ExperimentSpec, FaultSpec

    return ExperimentSpec(
        construction="bn", params=QUICK_BN,
        grid=(FaultSpec(p=1e-3), FaultSpec(p=0.01, q=1e-3)),
        trials=20, chunk_size=7, name="e21-identity",
    )


def _traced_run(spec, max_batch_bytes, **run_kw):
    """Run ``spec`` serially and return (result, peak_bytes, seconds).

    Serial (workers=1) execution is the conservative measurement: the
    kernels run *in the parent*, so the traced peak covers both the fold
    state and the sub-chunk buffers the budget is supposed to bound.
    """
    from repro.api import ExperimentRunner

    runner = ExperimentRunner(workers=1, max_batch_bytes=max_batch_bytes)
    gc.collect()
    tracemalloc.start()
    t0 = time.perf_counter()
    result = runner.run(spec, **run_kw)
    seconds = time.perf_counter() - t0
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return result, peak, seconds


def _memory_spec(trials):
    from repro.api import ExperimentSpec, FaultSpec

    return ExperimentSpec(
        construction="bn", params=QUICK_BN, grid=(FaultSpec(p=1e-3),),
        trials=trials, chunk_size=QUICK_CHUNK, name=f"e21-mem-{trials}",
    )


def measure_quick() -> dict:
    """The CI-gate triple: merge identity, bounded peak, resume identity."""
    from repro.testkit import checkpoint_resume_oracle, streaming_merge_oracle

    spec = _quick_identity_spec()
    merge_report = streaming_merge_oracle(spec, max_batch_bytes=4096, workers=2)
    resume_report = checkpoint_resume_oracle(spec, workers=2)

    # Warm the cached construction so the one-time O(nodes) geometry
    # build is not charged to either traced run.
    _traced_run(_memory_spec(1), QUICK_BUDGET)
    _, peak_small, _ = _traced_run(_memory_spec(QUICK_TRIALS_SMALL), QUICK_BUDGET)
    _, peak_large, s_large = _traced_run(
        _memory_spec(QUICK_TRIALS_LARGE), QUICK_BUDGET
    )
    return {
        "streamed_identical": merge_report.ok,
        "resume_identical": resume_report.ok,
        "identity_cases": merge_report.cases + resume_report.cases,
        "memory": {
            "construction": "bn",
            "params": QUICK_BN,
            "chunk_size": QUICK_CHUNK,
            "max_batch_bytes": QUICK_BUDGET,
            "peak_limit_bytes": QUICK_PEAK_LIMIT,
            "trials_small": QUICK_TRIALS_SMALL,
            "trials_large": QUICK_TRIALS_LARGE,
            "peak_bytes_small": peak_small,
            "peak_bytes_large": peak_large,
            "peak_growth_4x_trials": round(peak_large / peak_small, 3),
            "seconds_large": round(s_large, 3),
        },
    }


def quick_violations(data: dict) -> list[str]:
    """Invariant failures in a ``measure_quick`` payload (empty = pass)."""
    mem = data["memory"]
    problems = []
    if not data["streamed_identical"]:
        problems.append("streamed merge is not byte-identical to materialized")
    if not data["resume_identical"]:
        problems.append("resume from a cut journal is not byte-identical")
    if mem["peak_bytes_large"] > QUICK_PEAK_LIMIT:
        problems.append(
            f"parent peak {mem['peak_bytes_large']} B exceeds the "
            f"{QUICK_PEAK_LIMIT} B ceiling for a {QUICK_BUDGET} B budget"
        )
    if mem["peak_bytes_large"] > TRIAL_GROWTH_LIMIT * mem["peak_bytes_small"]:
        problems.append(
            f"parent peak grew {mem['peak_growth_4x_trials']}x when trials "
            f"grew 4x (limit {TRIAL_GROWTH_LIMIT}x) — not trial-independent"
        )
    return problems


def measure_million_node() -> dict:
    """Survival point on the 1.35M-node host, two trial counts: the peak
    must track the (fixed) budget, not the trial count."""
    from repro.api import ExperimentSpec, FaultSpec
    from repro.core.params import BnParams
    from repro.fastpath import DEFAULT_MAX_BATCH_BYTES, bn_bytes_per_trial

    params = BnParams(**MILLION_NODE_BN)
    p = params.paper_fault_probability

    def run(trials):
        spec = ExperimentSpec(
            construction="bn", params=MILLION_NODE_BN, grid=(FaultSpec(p=p),),
            trials=trials, chunk_size=8, name=f"e21-1m-nodes-{trials}",
        )
        result, peak, seconds = _traced_run(spec, DEFAULT_MAX_BATCH_BYTES)
        mc = result.points[0].result
        return {
            "trials": trials,
            "seconds": round(seconds, 3),
            "parent_peak_bytes": peak,
            "successes": mc.successes,
        }

    run(2)  # warm the construction cache outside the traced runs
    small, large = run(16), run(48)
    return {
        "construction": "bn",
        "params": MILLION_NODE_BN,
        "host_nodes": params.num_nodes,
        "p": p,
        "max_batch_bytes": DEFAULT_MAX_BATCH_BYTES,
        "bytes_per_trial": bn_bytes_per_trial(params),
        "runs": [small, large],
        "peak_growth_3x_trials": round(
            large["parent_peak_bytes"] / small["parent_peak_bytes"], 3
        ),
    }


def measure_million_trial() -> dict:
    """1M-trial bn Monte-Carlo, journaled, under an 8 MiB budget."""
    from repro.api import ExperimentSpec, FaultSpec
    from repro.core.params import BnParams

    spec = ExperimentSpec(
        construction="bn", params=MILLION_TRIAL_BN, grid=(FaultSpec(p=1e-3),),
        trials=MILLION_TRIALS, chunk_size=MILLION_TRIAL_CHUNK,
        name="e21-1m-trials",
    )
    with tempfile.TemporaryDirectory() as tmp:
        journal = Path(tmp) / "e21.ndjson"
        result, peak, seconds = _traced_run(
            spec, MILLION_BUDGET, checkpoint=journal
        )
        journal_lines = len(journal.read_bytes().split(b"\n")) - 1
    mc = result.points[0].result
    return {
        "construction": "bn",
        "params": MILLION_TRIAL_BN,
        "host_nodes": BnParams(**MILLION_TRIAL_BN).num_nodes,
        "p": 1e-3,
        "trials": MILLION_TRIALS,
        "chunk_size": MILLION_TRIAL_CHUNK,
        "max_batch_bytes": MILLION_BUDGET,
        "seconds": round(seconds, 3),
        "trials_per_s": round(MILLION_TRIALS / seconds),
        "parent_peak_bytes": peak,
        "journal_lines": journal_lines,
        "successes": mc.successes,
        "mean_faults": round(mc.mean_faults, 4),
    }


def measure_full() -> dict:
    quick = measure_quick()
    return {
        "benchmark": (
            "bounded-memory streaming ExperimentRunner: incremental merge, "
            "sub-chunk max_batch_bytes budgets, checkpoint/resume journal "
            "(repro.api.experiment + repro.fastpath.streaming)"
        ),
        "machine_cpus": os.cpu_count(),
        "note": (
            "the CI perf gate replays the `quick` section and fails when "
            "streamed or resumed output diverges byte-for-byte from the "
            "materialized reference, when the parent tracemalloc peak "
            "exceeds peak_limit_bytes under the tiny budget, or when peak "
            "grows with the trial count.  The million-scale sections are "
            "the ISSUE 8 acceptance runs: a survival point on a "
            "1.35M-node host and a 1M-trial Monte-Carlo, both under a "
            "fixed max_batch_bytes with trial-count-independent parent "
            "peaks.  Peaks are tracemalloc bytes over a serial run, which "
            "charges the kernels' own buffers to the parent — the "
            "conservative reading of the bound"
        ),
        "quick": quick,
        "million_node_survival": measure_million_node(),
        "million_trial_mc": measure_million_trial(),
    }


# -- pytest integration ------------------------------------------------------


def test_e21_streaming(benchmark, report):
    from conftest import run_once

    from repro.util.tables import Table

    def compute():
        data = measure_full()
        STREAMING_JSON.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
        return data

    data = run_once(benchmark, compute)
    mn, mt = data["million_node_survival"], data["million_trial_mc"]
    table = Table(
        ["case", "host nodes", "trials", "seconds", "peak MiB", "budget MiB"],
        title="E21: streaming runner at million scale",
    )
    q = data["quick"]["memory"]
    table.add_row(
        ["quick gate", 1944, q["trials_large"], q["seconds_large"],
         f"{q['peak_bytes_large'] / 2**20:.1f}",
         f"{q['max_batch_bytes'] / 2**20:.0f}"]
    )
    big = mn["runs"][-1]
    table.add_row(
        ["1M-node survival", mn["host_nodes"], big["trials"], big["seconds"],
         f"{big['parent_peak_bytes'] / 2**20:.1f}",
         f"{mn['max_batch_bytes'] / 2**20:.0f}"]
    )
    table.add_row(
        ["1M-trial MC", mt["host_nodes"], mt["trials"], mt["seconds"],
         f"{mt['parent_peak_bytes'] / 2**20:.1f}",
         f"{mt['max_batch_bytes'] / 2**20:.0f}"]
    )
    report("e21_streaming", table)

    assert quick_violations(data["quick"]) == []
    # ISSUE 8 acceptance: the million-scale runs complete with parent
    # peaks independent of the trial count.
    assert mn["peak_growth_3x_trials"] <= TRIAL_GROWTH_LIMIT
    assert mt["journal_lines"] == 1 + -(-MILLION_TRIALS // MILLION_TRIAL_CHUNK)


# -- CLI / CI gate -----------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="measure only the identity + memory gate "
                         "(the CI perf gate)")
    ap.add_argument("--check", metavar="BASELINE",
                    help="compare against a committed BENCH_streaming.json; "
                         "exit 1 on an invariant violation or a "
                         ">50%% peak-memory regression")
    ap.add_argument("--out", metavar="PATH",
                    help="write measurement JSON here (full mode defaults "
                         "to BENCH_streaming.json)")
    args = ap.parse_args(argv)

    data = {"quick": measure_quick()} if args.quick else measure_full()
    print(json.dumps(data, indent=2, sort_keys=True))

    problems = quick_violations(data["quick"])
    for problem in problems:
        print(f"FAIL: {problem}", file=sys.stderr)
    if problems:
        return 1

    if args.out:
        Path(args.out).write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    elif not args.quick:
        STREAMING_JSON.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
        print(f"wrote {STREAMING_JSON}")

    if args.check:
        baseline = json.loads(Path(args.check).read_text())["quick"]["memory"]
        measured = data["quick"]["memory"]["peak_bytes_large"]
        ceiling = int(baseline["peak_bytes_large"] * PEAK_TOLERANCE)
        verdict = "OK" if measured <= ceiling else "REGRESSION"
        print(
            f"perf gate [streaming peak]: measured {measured} B vs baseline "
            f"{baseline['peak_bytes_large']} B (ceiling {ceiling} B) "
            f"-> {verdict}"
        )
        if measured > ceiling:
            print(
                "FAIL: streaming-runner parent peak regressed >50% against "
                "the committed baseline",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
