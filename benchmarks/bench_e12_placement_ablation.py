"""E12 — ablation: band-placement strategies (DESIGN.md's design-choice).

``straight`` (fast path), ``paper`` (full pipeline), ``auto`` (straight
with paper fallback).  Claims quantified: auto dominates both pure
strategies in success rate; straight is an order of magnitude faster when
it applies; the paper pipeline rescues instances straight cannot express
(winding bands) and vice versa (paper needs region structure, straight
does not care).
"""

from __future__ import annotations

import time

from conftest import run_once

from repro.analysis.montecarlo import MonteCarlo
from repro.core.bn import BTorus
from repro.core.params import BnParams
from repro.util.tables import Table

PARAMS = BnParams(d=2, b=4, s=1, t=2)
TRIALS = 20


def test_e12_strategy_ablation(benchmark, report):
    p0 = PARAMS.paper_fault_probability
    ps = [p0, 4 * p0]
    bt = BTorus(PARAMS)

    def compute():
        rows = []
        for p in ps:
            for strategy in ("straight", "paper", "auto"):
                t0 = time.perf_counter()
                res = MonteCarlo(
                    lambda seed, s=strategy: bt.trial(p, seed, strategy=s)
                ).run(TRIALS)
                dt = (time.perf_counter() - t0) / TRIALS
                rows.append(
                    [f"{p:.1e}", strategy, f"{res.success_rate:.2f}",
                     f"{1e3 * dt:.1f}", dict(res.categories)]
                )
        return rows

    rows = run_once(benchmark, compute)
    table = Table(
        ["p", "strategy", "success", "ms/trial", "failure categories"],
        title=f"E12: placement-strategy ablation (B^2_{PARAMS.n}, {TRIALS} trials)",
    )
    for r in rows:
        table.add_row(r)
    report("e12_placement_ablation", table)

    by = {(r[0], r[1]): float(r[2]) for r in rows}
    for p in (f"{p0:.1e}", f"{4 * p0:.1e}"):
        assert by[(p, "auto")] >= by[(p, "straight")] - 1e-9
        assert by[(p, "auto")] >= by[(p, "paper")] - 1e-9


def _representative_faults(strategy_fn):
    """First paper-rate draw the given placement handles (seeds are cheap;
    some draws are legitimately unrecoverable by a single strategy)."""
    from repro.errors import ReconstructionError
    from repro.util.rng import spawn_rng

    bt = BTorus(PARAMS)
    for seed in range(50):
        faults = bt.sample_faults(PARAMS.paper_fault_probability, spawn_rng(seed, "e12"))
        try:
            strategy_fn(PARAMS, faults)
            return faults
        except ReconstructionError:
            continue
    raise RuntimeError("no representative draw found")


def test_e12_straight_speed(benchmark):
    from repro.core.placement import place_straight

    faults = _representative_faults(place_straight)
    benchmark(lambda: place_straight(PARAMS, faults))


def test_e12_paper_speed(benchmark):
    from repro.core.placement import place_paper

    faults = _representative_faults(place_paper)
    benchmark(lambda: place_paper(PARAMS, faults))
