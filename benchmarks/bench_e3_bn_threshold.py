"""E3 — survival-vs-p threshold shape for B^2_n.

The theorem operates at p = b^{-3d}; pushing p beyond it must degrade
survival monotonically (modulo Monte-Carlo noise), with the 50% crossover
sitting well above the theorem's operating point — i.e. the paper's regime
has slack, it is not a cliff edge.

The sweep is one :class:`ExperimentSpec` whose grid spans the probability
ladder; points are independent seed trees, so extending the ladder never
perturbs existing points.  It runs on the batch backend: the low-p points
classify almost entirely inside the vectorized straight-cover kernel,
while the saturated tail falls back per-trial — same numbers either way.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis.sweep import ThresholdPoint, estimate_threshold
from repro.api import ExperimentRunner, ExperimentSpec
from repro.core.params import BnParams
from repro.util.tables import Table

PARAMS = BnParams(d=2, b=4, s=1, t=2)
TRIALS = 20


def test_e3_threshold_sweep(benchmark, report):
    p0 = PARAMS.paper_fault_probability
    ps = [p0 / 4, p0, 4 * p0, 16 * p0, 64 * p0, 256 * p0]
    spec = ExperimentSpec.from_grid(
        "bn",
        {"d": PARAMS.d, "b": PARAMS.b, "s": PARAMS.s, "t": PARAMS.t},
        p_values=ps,
        trials=TRIALS,
        name="e3 threshold",
    )

    def compute():
        result = ExperimentRunner(batch=True).run(spec)
        return [ThresholdPoint(pt.fault_spec.p, pt.result) for pt in result.points]

    points = run_once(benchmark, compute)
    table = Table(
        ["p", "p / b^-3d", "mean faults", "survival", "95% CI"],
        title=f"E3: survival vs fault probability (B^2_{PARAMS.n}, {TRIALS} trials/point)",
    )
    for pt in points:
        lo, hi = pt.result.ci
        table.add_row(
            [f"{pt.p:.2e}", f"{pt.p / p0:.0f}", f"{pt.result.mean_faults:.1f}",
             f"{pt.result.success_rate:.2f}", f"[{lo:.2f},{hi:.2f}]"]
        )
    th = estimate_threshold(points, level=0.5)
    report("e3_bn_threshold", table)
    print(f"estimated 50% survival crossover: p ~ {th:.2e} "
          f"({th / p0:.0f}x the theorem's operating point)")

    rates = [pt.result.success_rate for pt in points]
    # Shape: start near 1, end near 0, no big non-monotone jumps.
    assert rates[0] >= 0.9 and rates[1] >= 0.85
    assert rates[-1] <= 0.2
    assert th > p0  # the theorem's regime is inside the survival plateau
