"""E18 — scalar vs vectorized batched-trial backend, and the CI perf gate.

Measures wall-clock of the same bn/an survival Monte-Carlo on the scalar
per-trial path and on ``run_batch``, asserts outcome-identity while at it,
and records the numbers in ``BENCH_fastpath.json`` at the repo root.  The
headline claim (ISSUE 2 acceptance): batched bn survival at d=2, b=4 is
>= 10x faster than scalar.

Runs two ways:

* ``pytest benchmarks/bench_e18_fastpath.py`` — bench-suite integration
  (full measurement, table artifact, regenerates both JSON files);
* ``python benchmarks/bench_e18_fastpath.py [--quick] [--check PATH]`` —
  the CI perf-regression gate.  ``--quick`` measures the headline bn
  configuration, the batched *lifetime* kernel on the same instance and
  the batched *traffic* kernel on the e14 guest torus — once per
  importable kernel tier, so machines with numba also gate the
  ``compiled`` tier (min-of-N timed, a couple of seconds); ``--check``
  compares every key present on both sides against the committed
  baseline and exits 1 on a >30% wall-clock regression of any
  vectorized kernel.  Because CI runners
  and the machine that produced the baseline differ, the gate normalises
  by the scalar kernel measured in the same process: the batched kernel
  "regressed by 30%" when its speedup over scalar drops below
  baseline_speedup / 1.3.  That ratio is machine-portable; raw seconds
  are recorded for humans.

``BENCH_runner.json`` is regenerated here too (same harness, same
machine) with ``machine_cpus`` taken from the actual runner instead of a
hand-written single-CPU note.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
FASTPATH_JSON = ROOT / "BENCH_fastpath.json"
RUNNER_JSON = ROOT / "BENCH_runner.json"

#: Gate tolerance: fail on >30% batched-kernel regression (ISSUE 2).
TOLERANCE = 1.3

#: (construction, factory params, trials) per measured case.
FULL_BN = dict(d=2, b=4, s=1, t=2)
FULL_AN = dict(d=2, b=3, s=1, t=2, k_sub=2, h=12)
FULL_TRIALS = 64
QUICK_TRIALS = 64
#: Repeated timings per kernel; the minimum is reported.  The batched
#: kernel is single-digit milliseconds, far inside shared-CI-runner
#: scheduler jitter, so a one-shot sample would make the gate flaky —
#: min-of-N discards descheduling spikes and is the stable statistic for
#: a deterministic kernel.
REPEATS = 3


def _tier_kwargs(tier: str) -> dict:
    """The kwargs that select a kernel tier (empty for the batch default,
    mirroring how the runner only passes ``tier=`` when it is compiled)."""
    return {} if tier == "batch" else {"tier": tier}


def _measure(name: str, params: dict, trials: int, p: float | None = None,
             tier: str = "batch") -> dict:
    """Time scalar vs batched execution of the same seeds; verify identity.

    Both kernels are timed ``REPEATS`` times and the minimum is kept.
    ``tier`` picks the vectorized rung under measurement (``"batch"`` or
    ``"compiled"``); the scalar reference is always re-timed in the same
    process so the recorded speedup stays machine-portable."""
    from repro.api import FaultSpec
    from repro.api.registry import get

    construction = get(name, **params)
    if p is None:
        p = construction.params.paper_fault_probability
    spec = FaultSpec(p=p)
    seeds = list(range(trials))
    kw = _tier_kwargs(tier)
    construction.run_batch(spec, seeds[:2], **kw)  # warm both paths (+ JIT)
    construction.trial(spec, 0)

    batch_s = float("inf")
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        batch_outs = construction.run_batch(spec, seeds, **kw)
        batch_s = min(batch_s, time.perf_counter() - t0)

    scalar_s = float("inf")
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        scalar_outs = [construction.trial(spec, s) for s in seeds]
        scalar_s = min(scalar_s, time.perf_counter() - t0)

    identical = all(
        (a.success, a.category, a.num_faults, a.strategy_used)
        == (b.success, b.category, b.num_faults, b.strategy_used)
        for a, b in zip(batch_outs, scalar_outs)
    )
    return {
        "construction": name,
        "params": params,
        "p": p,
        "tier": tier,
        "trials": trials,
        "timing_repeats": REPEATS,
        "scalar_s": round(scalar_s, 4),
        "batch_s": round(batch_s, 4),
        "speedup": round(scalar_s / batch_s, 2) if batch_s > 0 else float("inf"),
        "outcomes_identical": identical,
        "successes": sum(o.success for o in batch_outs),
    }


#: Lifetime-kernel gate configuration (same instance as the trial gate).
LIFETIME_TRIALS = 32


def _measure_lifetime(params: dict, trials: int, tier: str = "batch") -> dict:
    """Time scalar vs batched lifetime execution of the same seeds; verify
    trial-for-trial identical first-failure records (ISSUE 3 contract)."""
    from repro.api import LifetimeSpec
    from repro.api.registry import get

    construction = get("bn", **params)
    spec = LifetimeSpec()
    seeds = list(range(trials))
    kw = _tier_kwargs(tier)
    construction.run_lifetime_batch(spec, seeds[:2], **kw)  # warm both paths
    construction.lifetime_trial(spec, 0)

    batch_s = float("inf")
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        batch_outs = construction.run_lifetime_batch(spec, seeds, **kw)
        batch_s = min(batch_s, time.perf_counter() - t0)

    scalar_s = float("inf")
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        scalar_outs = [construction.lifetime_trial(spec, s) for s in seeds]
        scalar_s = min(scalar_s, time.perf_counter() - t0)

    identical = all(
        (a.lifetime, a.steps, a.category, a.failed, a.masked, a.replaced)
        == (b.lifetime, b.steps, b.category, b.failed, b.masked, b.replaced)
        for a, b in zip(batch_outs, scalar_outs)
    )
    return {
        "construction": "bn",
        "params": params,
        "tier": tier,
        "timeline": "uniform",
        "trials": trials,
        "timing_repeats": REPEATS,
        "scalar_s": round(scalar_s, 4),
        "batch_s": round(batch_s, 4),
        "speedup": round(scalar_s / batch_s, 2) if batch_s > 0 else float("inf"),
        "outcomes_identical": identical,
        "median_lifetime": sorted(o.lifetime for o in batch_outs)[trials // 2],
    }


#: Traffic-kernel gate configuration: the e14 guest torus with a uniform
#: closed-loop batch big enough that kernel time dominates route setup.
TRAFFIC_SHAPE = (36, 36)
TRAFFIC_MESSAGES = 1200


def _measure_traffic(shape: tuple, messages: int, tier: str = "batch") -> dict:
    """Time the scalar engine vs the vectorized traffic kernel on the same
    workload; verify the SimResults are identical field for field."""
    from repro.fastpath.traffic_batch import sim_results_identical, simulate_batch
    from repro.sim import make_traffic, simulate
    from repro.util.rng import spawn_rng

    traffic = make_traffic(shape, "uniform", messages, spawn_rng(3, "e18-traffic"))
    kw = _tier_kwargs(tier)
    simulate_batch(shape, traffic, **kw)  # warm (+ JIT)

    batch_s = float("inf")
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        b = simulate_batch(shape, traffic, **kw)
        batch_s = min(batch_s, time.perf_counter() - t0)

    scalar_s = float("inf")
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        a = simulate(shape, traffic)
        scalar_s = min(scalar_s, time.perf_counter() - t0)

    return {
        "shape": list(shape),
        "pattern": "uniform",
        "tier": tier,
        "messages": messages,
        "timing_repeats": REPEATS,
        "scalar_s": round(scalar_s, 4),
        "batch_s": round(batch_s, 4),
        "speedup": round(scalar_s / batch_s, 2) if batch_s > 0 else float("inf"),
        "outcomes_identical": sim_results_identical(a, b),
        "cycles": int(a.cycles),
    }


def measure_quick(tier: str = "batch") -> dict:
    return _measure("bn", FULL_BN, QUICK_TRIALS, tier=tier)


def measure_traffic_quick(tier: str = "batch") -> dict:
    return _measure_traffic(TRAFFIC_SHAPE, TRAFFIC_MESSAGES, tier=tier)


def measure_lifetime_quick(tier: str = "batch") -> dict:
    return _measure_lifetime(FULL_BN, LIFETIME_TRIALS, tier=tier)


#: The CI-gated baseline keys.  The ``*_compiled`` entries exist only in
#: data (and baselines) recorded where numba is importable; both sides of
#: the gate skip keys the other lacks, so a baseline from a numba-free
#: machine still gates the batch tier on a numba-equipped runner and
#: vice versa.
GATE_KEYS = ("quick", "lifetime_quick", "traffic_quick",
             "quick_compiled", "lifetime_quick_compiled",
             "traffic_quick_compiled")


def measure_gate_data() -> dict:
    """The quick gate measurements for every importable kernel tier."""
    from repro.fastpath.dispatch import available_tiers, compiled_available

    data = {
        "quick": measure_quick(),
        "lifetime_quick": measure_lifetime_quick(),
        "traffic_quick": measure_traffic_quick(),
        "tiers_measured": list(available_tiers()),
    }
    if compiled_available():
        data["quick_compiled"] = measure_quick(tier="compiled")
        data["lifetime_quick_compiled"] = measure_lifetime_quick(tier="compiled")
        data["traffic_quick_compiled"] = measure_traffic_quick(tier="compiled")
    return data


def measure_full() -> dict:
    """The committed benchmark: bn (headline) + an, plus the quick config
    the CI gate replays (per importable tier)."""
    bn = _measure("bn", FULL_BN, FULL_TRIALS)
    an = _measure("an", FULL_AN, FULL_TRIALS, p=0.1)
    gate = measure_gate_data()
    return {
        **gate,
        "benchmark": (
            "scalar per-trial vs vectorized run_batch / run_lifetime_batch / "
            "traffic kernel, identical seeds and outcomes (repro.fastpath)"
        ),
        "machine_cpus": os.cpu_count(),
        "note": (
            "speedups are same-machine ratios and therefore portable across "
            "runners; the CI perf gate replays the `quick`, "
            "`lifetime_quick` and `traffic_quick` configurations — plus "
            "their `*_compiled` twins where the numba JIT tier is "
            "importable (see `tiers_measured`) — and fails when any "
            "measured speedup drops below speedup/1.3 (a >30% "
            "wall-clock regression of the vectorized kernel, normalised by "
            "the scalar kernel measured in the same process).  Keys absent "
            "from either side of the comparison are skipped, so a baseline "
            "recorded on a numba-free machine still gates the batch tier "
            "everywhere.  The lifetime scalar baseline is itself the "
            "incremental OnlineRecovery path, so this gate covers both "
            "lifetime pipelines; the headline traffic measurement at full "
            "size lives in BENCH_traffic.json.  The committed *_quick "
            "baselines are the minimum of several same-machine samples: "
            "the gate is one-sided, so a low-end baseline absorbs "
            "run-to-run scalar-kernel variance without loosening the 30% "
            "rule"
        ),
        "bn_survival_d2_b4": bn,
        "an_survival": an,
    }


def regenerate_runner_json() -> dict:
    """Re-run the PR-1 ExperimentRunner timing with honest machine info."""
    from repro.api import ExperimentRunner, ExperimentSpec

    spec = ExperimentSpec.from_grid(
        "bn", FULL_BN,
        p_values=[2.44140625e-04, 1e-3],
        trials=64,
        name="runner-bench",
    )
    seconds = {}
    dumps = {}
    for workers in (1, 4, 8):
        runner = ExperimentRunner(workers=workers, batch=False)
        t0 = time.perf_counter()
        result = runner.run(spec)
        seconds[f"workers={workers}"] = round(time.perf_counter() - t0, 3)
        dumps[workers] = json.dumps(result.to_dict(), sort_keys=True)
    t0 = time.perf_counter()
    batch_result = ExperimentRunner(batch=True).run(spec)
    batch_s = round(time.perf_counter() - t0, 3)
    cpus = os.cpu_count()
    return {
        "benchmark": (
            "ExperimentRunner wall-clock, bn d=2 b=4 (12288 nodes), "
            "2 fault points x 64 trials"
        ),
        "machine_cpus": cpus,
        "byte_identical_w1_w4": dumps[1] == dumps[4],
        "byte_identical_batch": dumps[1] == json.dumps(
            batch_result.to_dict(), sort_keys=True
        ),
        "seconds": seconds,
        "seconds_batch_backend": batch_s,
        "speedup_w4_vs_w1": round(seconds["workers=1"] / seconds["workers=4"], 2),
        "speedup_batch_vs_w1": round(seconds["workers=1"] / batch_s, 2),
        "note": (
            f"recorded on a {cpus}-CPU runner (machine_cpus); the pool splits "
            "work into worker-count-independent seed chunks, so on an N-core "
            "host the same spec fans out ~N-fold with byte-identical output. "
            "The streaming runner consumes one reused pool via "
            "imap_unordered (and skips the pool outright for one task or "
            "workers=1), so workers>1 costs only a few percent even with a "
            "single CPU — the historical per-run pool spawn cost ~15%. "
            "The vectorized batch backend (seconds_batch_backend) still "
            "dominates either way on Bernoulli bn/an points."
        ),
    }


# -- pytest integration ------------------------------------------------------


def test_e18_fastpath_speedup(benchmark, report):
    from conftest import run_once

    from repro.util.tables import Table

    def compute():
        data = measure_full()
        FASTPATH_JSON.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
        RUNNER_JSON.write_text(
            json.dumps(regenerate_runner_json(), indent=2, sort_keys=True) + "\n"
        )
        return data

    data = run_once(benchmark, compute)
    table = Table(
        ["case", "trials", "scalar s", "batch s", "speedup", "identical"],
        title="E18: scalar per-trial vs vectorized batch backend",
    )
    for key in ("bn_survival_d2_b4", "an_survival", *GATE_KEYS):
        c = data.get(key)
        if c is None:  # a *_compiled key on a numba-free machine
            continue
        table.add_row(
            [key, c.get("trials", c.get("messages")), c["scalar_s"], c["batch_s"],
             f"{c['speedup']:.1f}x", "yes" if c["outcomes_identical"] else "NO"]
        )
    report("e18_fastpath", table)

    bn = data["bn_survival_d2_b4"]
    assert bn["outcomes_identical"] and data["an_survival"]["outcomes_identical"]
    assert data["lifetime_quick"]["outcomes_identical"]
    assert data["traffic_quick"]["outcomes_identical"]
    # ISSUE 2 acceptance: >= 10x on bn survival at d=2, b=4.
    assert bn["speedup"] >= 10.0, f"batched speedup {bn['speedup']}x < 10x"


# -- CLI / CI gate -----------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="measure only the headline bn configuration "
                         "(the CI perf gate)")
    ap.add_argument("--check", metavar="BASELINE",
                    help="compare against a committed BENCH_fastpath.json; "
                         "exit 1 on >30%% batched-kernel regression")
    ap.add_argument("--out", metavar="PATH",
                    help="write measurement JSON here (full mode defaults to "
                         "BENCH_fastpath.json + BENCH_runner.json)")
    args = ap.parse_args(argv)

    if args.quick:
        data = measure_gate_data()
    else:
        data = measure_full()
    print(json.dumps(data, indent=2, sort_keys=True))

    for key in GATE_KEYS:
        if key in data and not data[key]["outcomes_identical"]:
            print(
                f"FAIL: vectorized outcomes differ from scalar outcomes ({key})",
                file=sys.stderr,
            )
            return 1

    if args.out:
        Path(args.out).write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    elif not args.quick:
        FASTPATH_JSON.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
        RUNNER_JSON.write_text(
            json.dumps(regenerate_runner_json(), indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {FASTPATH_JSON} and {RUNNER_JSON}")

    if args.check:
        baselines = json.loads(Path(args.check).read_text())
        failed = False
        for key in GATE_KEYS:
            if key not in baselines or key not in data:
                # Older baselines lack newer kernels' keys, and *_compiled
                # keys exist only where numba imports; gate what both have.
                continue
            baseline = baselines[key]["speedup"]
            measured = data[key]["speedup"]
            floor = baseline / TOLERANCE
            verdict = "OK" if measured >= floor else "REGRESSION"
            print(
                f"perf gate [{key}]: measured speedup {measured:.1f}x vs "
                f"baseline {baseline:.1f}x (floor {floor:.1f}x) -> {verdict}"
            )
            if measured < floor:
                failed = True
        if failed:
            print(
                "FAIL: a vectorized kernel regressed >30% relative to the "
                "scalar kernel on this machine",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
