"""Shared benchmark fixtures.

Every experiment bench renders its table(s) through the ``report`` fixture:
the text is written to ``benchmarks/results/<id>.txt`` (so EXPERIMENTS.md
can cite stable artifacts) and printed (visible with ``pytest -s`` and in
failure output).  Timing data flows through pytest-benchmark as usual.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS = Path(__file__).parent / "results"


@pytest.fixture()
def report():
    def _report(name: str, table) -> str:
        text = table.render() if hasattr(table, "render") else str(table)
        RESULTS.mkdir(exist_ok=True)
        (RESULTS / f"{name}.txt").write_text(text + "\n")
        print("\n" + text, flush=True)
        return text

    return _report


def run_once(benchmark, fn):
    """Run an experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
