"""E8 — Theorem 3 across dimensions: degree 4d, tolerance k = b^{2^d - 1},
node count O(n^d).

Two tables:

* campaigns at the rated budget for d = 1, 2, 3 (verified where the host is
  small enough; sparse recovery + spot checks where it is not),
* the overhead-vs-n scaling: nodes / n^d -> 1 as n grows past b^{2^d},
  which is the executable meaning of "O(n^d) nodes for k = O(n^{1-2^-d})".
"""

from __future__ import annotations

import numpy as np
from conftest import run_once

from repro.core.dn import DTorus
from repro.core.params import DnParams
from repro.errors import ReconstructionError
from repro.faults.adversary import adversarial_node_faults
from repro.util.rng import spawn_rng
from repro.util.tables import Table

CASES = [
    ("d=1", DnParams(d=1, n=30, b=3), "dense"),
    ("d=2", DnParams(d=2, n=70, b=2), "dense"),
    ("d=2 b=3", DnParams(d=2, n=1100, b=3), "dense-noverify"),
    ("d=3", DnParams(d=3, n=260, b=2), "dense-noverify"),
    ("d=3 n=2000", DnParams(d=3, n=2000, b=2), "sparse"),
]


def _sparse_coords(params: DnParams, k: int, seed: int) -> np.ndarray:
    rng = spawn_rng(seed, "e8-sparse", params.n)
    return np.stack(
        [rng.integers(0, params.shape[a], k) for a in range(params.d)], axis=1
    )


def test_e8_dimension_table(benchmark, report):
    def compute():
        rows = []
        for label, params, mode in CASES:
            dt = DTorus(params)
            wins = 0
            trials = 3
            for trial in range(trials):
                try:
                    if mode == "sparse":
                        coords = _sparse_coords(params, params.k, trial)
                        rec = dt.recover(
                            fault_coords=coords, verify=False, assemble_phi=False
                        )
                        # spot-check: guest corners avoid faults
                        sample = np.stack(
                            [np.arange(0, params.n, max(1, params.n // 7))] * params.d,
                            axis=1,
                        )
                        hosts = dt.map_guest(rec, sample)
                        fkeys = set(dt.codec.ravel(coords).tolist())
                        assert not any(int(h) in fkeys for h in hosts)
                    else:
                        f = adversarial_node_faults(
                            params.shape, params.k, "random", spawn_rng(trial, label)
                        )
                        rec = dt.recover(f, verify=(mode == "dense"))
                        assert not f.ravel()[rec.phi[::499]].any()
                    wins += 1
                except ReconstructionError:
                    pass
            rows.append(
                [label, params.n, params.k, params.degree,
                 f"{params.num_nodes / params.n ** params.d:.2f}",
                 f"{wins}/{trials}"]
            )
        return rows

    rows = run_once(benchmark, compute)
    table = Table(
        ["case", "n", "k tolerated", "degree=4d", "nodes / n^d", "recovered"],
        title="E8: Theorem 3 across dimensions (random campaigns at rated k)",
    )
    for r in rows:
        table.add_row(r)
    report("e8_dn_dims", table)

    for r, (label, params, _) in zip(rows, CASES):
        assert r[5] == "3/3", label
        assert r[3] == 4 * params.d


def test_e8_overhead_scaling(benchmark, report):
    """nodes / n^d -> 1 as n grows (fixed b): the O(n^d) claim."""

    def compute():
        rows = []
        for d, b, ns in [(2, 2, (70, 200, 1000)), (3, 2, (260, 1000, 5000))]:
            for n in ns:
                p = DnParams(d=d, n=n, b=b)
                rows.append([d, n, p.k, f"{p.num_nodes / n ** d:.3f}"])
        return rows

    rows = run_once(benchmark, compute)
    table = Table(
        ["d", "n", "k", "nodes / n^d"],
        title="E8b: node overhead -> 1 as n grows past b^{2^d} (O(n^d) claim)",
    )
    for r in rows:
        table.add_row(r)
    report("e8_dn_overhead", table)
    # overhead strictly decreasing in n for each d
    assert float(rows[2][3]) < float(rows[1][3]) < float(rows[0][3])
    assert float(rows[5][3]) < float(rows[4][3]) < float(rows[3][3])
    assert float(rows[2][3]) < 1.2 and float(rows[5][3]) < 1.5


def test_e8_tolerance_scaling_claim(benchmark, report):
    """k = Theta(n^{1 - 2^{-d}}) when redundancy is linear (d=2: n^{3/4})."""

    def compute():
        rows = []
        for n, b in [(70, 2), (1100, 3), (5500, 4)]:
            params = DnParams(d=2, n=n, b=b)
            rows.append(
                [n, b, params.k, f"{params.k / n ** 0.75:.3f}",
                 f"{params.num_nodes / n ** 2:.2f}"]
            )
        return rows

    rows = run_once(benchmark, compute)
    table = Table(
        ["n", "b", "k", "k / n^{3/4}", "overhead"],
        title="E8c: worst-case tolerance scaling (d=2): k vs n^{3/4}",
    )
    for r in rows:
        table.add_row(r)
    report("e8_dn_scaling", table)
    ratios = [float(r[3]) for r in rows]
    assert max(ratios) / max(min(ratios), 1e-9) < 20  # bounded constant
    overheads = [float(r[4]) for r in rows]
    assert all(o < 3.0 for o in overheads)  # linear-redundancy regime
